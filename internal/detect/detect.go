// Package detect implements the root-side deadlock detection of Section 5:
// the timeout-triggered consistent-state protocol, gathering of wait-for
// information, construction of the AND⊕OR wait-for graph, the deadlock
// criterion, and the generation of the user-facing outputs — with the
// per-phase timings the paper reports in Figures 10(b) and 11(b)
// (Synchronization, WFG gather, Graph build, Deadlock check, Output
// generation).
package detect

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dwst/internal/collmatch"
	"dwst/internal/dws"
	"dwst/internal/engine"
	"dwst/internal/report"
	"dwst/internal/trace"
	"dwst/internal/waitstate"
)

// Timings is the per-phase breakdown of one detection run.
type Timings struct {
	Synchronization  time.Duration // consistent-state protocol (Fig. 8)
	WFGGather        time.Duration // receiving wait-for info of all processes
	GraphBuild       time.Duration // building the wait-for graph
	DeadlockCheck    time.Duration // the graph search (release fixpoint)
	OutputGeneration time.Duration // HTML report + DOT graph
}

// Total sums all phases.
func (t Timings) Total() time.Duration {
	return t.Synchronization + t.WFGGather + t.GraphBuild + t.DeadlockCheck + t.OutputGeneration
}

// Verdict classifies the outcome of one detection run. It is an alias of
// engine.Verdict: the engine package owns the classification so every
// detection engine shares it; detect re-exports it for compatibility.
type Verdict = engine.Verdict

const (
	// VerdictNone: no deadlock and no stalled rank was found.
	VerdictNone = engine.VerdictNone
	// VerdictDeadlock is a true communication deadlock: a cycle/knot of
	// ranks waiting on each other, all of them alive.
	VerdictDeadlock = engine.VerdictDeadlock
	// VerdictDeadlockByFailure is a deadlock whose residue contains
	// crashed ranks: the blocked ranks wait (transitively) on processes
	// that died, not on each other's communication choices.
	VerdictDeadlockByFailure = engine.VerdictDeadlockByFailure
	// VerdictStalled: no wait-state deadlock, but the progress watchdog
	// flagged ranks that are alive yet issue no MPI calls past the quiet
	// period — a hang class the pure wait-state analysis cannot see.
	VerdictStalled = engine.VerdictStalled
)

// Result is the outcome of one detection run.
type Result struct {
	// Epoch is the snapshot attempt this result was computed from.
	Epoch int
	// Partial marks a degraded result: one or more first-layer tool nodes
	// crashed, so the wait state of their ranks (UnknownRanks) is unknown.
	// Unknown ranks are modeled as permanently blocked (an OR-wait over
	// the empty set), the conservative choice: processes waiting on them
	// are reported deadlocked rather than silently released.
	Partial bool
	// UnknownRanks lists the ranks whose wait state is unknown (ascending).
	UnknownRanks []int
	// Verdict classifies the result (true deadlock vs deadlock-by-failure
	// vs stalled vs none).
	Verdict Verdict
	// EngineVerdicts maps each detection engine that ran on this snapshot
	// to its verdict string (or its skip reason: "inapplicable",
	// "inconclusive"). Populated only when more than the default reference
	// engine ran (engine selection or differential mode).
	EngineVerdicts map[string]string
	// EngineDeviations lists disagreements between the engines and the
	// WFG reference on this snapshot (differential mode only; empty means
	// all applicable engines agreed).
	EngineDeviations []string
	// DeadRanks lists the application ranks that crashed (ascending), and
	// DeadLastCalls maps each to the number of MPI calls it completed.
	DeadRanks     []int
	DeadLastCalls map[int]int
	// FailureBlocked lists the live ranks transitively blocked on a
	// crashed rank (subset of Deadlocked, ascending).
	FailureBlocked []int
	// StalledRanks lists the ranks the progress watchdog flagged
	// (ascending). Stalled ranks may still resume, so they never enter
	// the wait-for graph.
	StalledRanks []int
	// Deadlock reports whether a deadlock (cycle/knot residue) was found.
	Deadlock bool
	// Deadlocked lists the deadlocked ranks (ascending).
	Deadlocked []int
	// Blocked lists all blocked ranks, including non-deadlocked ones.
	Blocked []int
	// Cycle is one dependency cycle within the deadlocked set.
	Cycle []int
	// Groups decomposes the deadlocked set into independent clusters
	// (strongly connected components of the restricted wait-for graph).
	Groups [][]int
	// Entries are the blocked ranks' wait conditions by rank.
	Entries map[int]dws.WaitEntry
	// UnexpectedMatches lists Section 3.3 situations found in the state.
	UnexpectedMatches []report.UnexpectedMatch
	// Arcs is the wait-for graph size (p² for the wildcard stress case).
	Arcs int
	// LostMessages counts sends that never matched a receive, summed over
	// all nodes (meaningful for detections after the application finished).
	LostMessages int
	// HTML and DOT are the generated outputs (only for deadlocks).
	HTML string
	DOT  string
	// SimplifiedDOT is the class-compressed wait-for graph (the paper's
	// Sec. 6 future work), and Summary its one-line description.
	SimplifiedDOT string
	Summary       string
	// Timings is the phase breakdown.
	Timings Timings
}

// TriggerDetection is the control message the driver injects into the root
// when the event-quiescence timeout fires.
type TriggerDetection struct{}

// AbortDetection is the control message the driver injects when an
// in-flight detection missed its deadline (snapshot messages lost beyond
// what retransmission healed): the root returns to idle and the driver
// broadcasts the matching dws.AbortSnapshot before retrying with a fresh
// epoch.
type AbortDetection struct{}

// NodeDown is the control message the driver injects after the TBON
// supervisor declared a tool node dead. Ranks is non-nil for first-layer
// nodes: the application ranks whose wait state is now unknown.
// Recovered means the node was respawned and rebuilt exactly (journal
// replay): no state was lost and the ranks stay known — the root must NOT
// mark the node dead, only abort a snapshot epoch the dead incarnation may
// have left unacknowledged.
type NodeDown struct {
	Node      int
	Ranks     []int
	Recovered bool
}

// Root is the root node's tool state: collective matching completion, the
// communicator registry, and the detection state machine. All methods run
// on the root's TBON goroutine.
type Root struct {
	p          int
	firstLayer int
	coll       *collmatch.Root

	phase       phase
	epoch       int // snapshot attempt counter (first attempt = 1)
	began       time.Time
	acked       map[int]bool
	acksDone    time.Time
	reports     map[int]dws.WaitReport
	gatherStart time.Time
	aborted     int // snapshot attempts aborted after missing the deadline

	// deadNodes maps crashed first-layer nodes to their hosted ranks;
	// detection proceeds without them and flags results as partial.
	deadNodes map[int][]int

	// deadRanks maps crashed application ranks to their last completed
	// call count (from RankDown messages).
	deadRanks map[int]int

	// Results delivers one Result per detection run (including runs that
	// found no deadlock) to the driver.
	Results chan *Result

	// engineSel selects the primary verdict engine ("", "wfg", "cmh",
	// "all"); differential additionally runs every engine and cross-checks.
	engineSel    string
	differential bool
	// extraEngines are appended to the differential engine list; the test
	// hook that lets a deliberately broken engine prove the oracle bites.
	extraEngines []engine.Engine

	// droppedResults counts completed detections the driver failed to
	// consume within the delivery timeout — should always be zero; counted
	// instead of silently dropped.
	droppedResults int

	mismatches []collmatch.Mismatch
}

type phase int

const (
	idle phase = iota
	awaitingAcks
	awaitingReports
)

// NewRoot creates the root state for p ranks and the given number of
// first-layer nodes.
func NewRoot(p, firstLayer int) *Root {
	return &Root{
		p:          p,
		firstLayer: firstLayer,
		coll:       collmatch.NewRoot(p, firstLayer),
		deadNodes:  make(map[int][]int),
		deadRanks:  make(map[int]int),
		Results:    make(chan *Result, 4),
	}
}

// OnRankDown records the death of an application rank. Returns true the
// first time the rank is recorded, so the driver rebroadcasts the message
// down once (duplicates from crash replay are absorbed here).
func (r *Root) OnRankDown(m dws.RankDown) bool {
	if _, ok := r.deadRanks[m.Rank]; ok {
		return false
	}
	r.deadRanks[m.Rank] = m.LastCall
	return true
}

// DeadRanks returns the crashed application ranks recorded so far
// (ascending). Only read after the tool stopped.
func (r *Root) DeadRanks() []int {
	out := make([]int, 0, len(r.deadRanks))
	for rk := range r.deadRanks {
		out = append(out, rk)
	}
	sort.Ints(out)
	return out
}

// Group exposes the communicator registry.
func (r *Root) Group(c trace.CommID) []int { return r.coll.Group(c) }

// OnReady processes an aggregated collectiveReady and returns the Acks to
// broadcast. Call-signature conflicts are recorded as mismatches.
func (r *Root) OnReady(m collmatch.Ready) []collmatch.Ack {
	acks, mism := r.coll.OnReady(m)
	if mism != nil {
		r.OnMismatch(*mism)
	}
	return acks
}

// OnMember processes a communicator-registry report.
func (r *Root) OnMember(m collmatch.Member) []collmatch.Ack { return r.coll.OnMember(m) }

// OnMismatch records a collective call mismatch (MUST's collective
// verification check). Duplicates for the same wave are collapsed.
func (r *Root) OnMismatch(m collmatch.Mismatch) {
	for _, have := range r.mismatches {
		if have.Comm == m.Comm && have.Wave == m.Wave {
			return
		}
	}
	r.mismatches = append(r.mismatches, m)
}

// Mismatches returns the recorded collective call mismatches. Only read
// after the tool stopped (the root goroutine owns the slice while running).
func (r *Root) Mismatches() []collmatch.Mismatch { return r.mismatches }

// Start begins a detection run under a fresh snapshot epoch; returns false
// if one is already running.
func (r *Root) Start() bool {
	if r.phase != idle {
		return false
	}
	r.phase = awaitingAcks
	r.epoch++
	r.began = time.Now()
	r.acked = make(map[int]bool, r.firstLayer)
	r.reports = make(map[int]dws.WaitReport, r.firstLayer)
	return true
}

// Epoch returns the current snapshot epoch (the one Start just opened).
func (r *Root) Epoch() int { return r.epoch }

// Aborted returns the number of snapshot attempts aborted by the driver.
func (r *Root) Aborted() int { return r.aborted }

// Abort cancels an in-flight detection (deadline missed) and returns the
// aborted epoch so the driver can broadcast the matching dws.AbortSnapshot;
// it returns 0 when no detection was running.
func (r *Root) Abort() int {
	if r.phase == idle {
		return 0
	}
	r.phase = idle
	r.aborted++
	return r.epoch
}

// OnAck processes an ackConsistentState; returns true when every live
// first-layer node acknowledged the current epoch (the driver then
// broadcasts RequestWaits). Acks of stale epochs are discarded.
func (r *Root) OnAck(a dws.AckConsistentState) bool {
	if r.phase != awaitingAcks || a.Epoch != r.epoch {
		return false
	}
	r.acked[a.Node] = true
	if !r.acksComplete() {
		return false
	}
	r.phase = awaitingReports
	r.acksDone = time.Now()
	r.gatherStart = r.acksDone
	return true
}

func (r *Root) acksComplete() bool {
	for i := 0; i < r.firstLayer; i++ {
		if _, dead := r.deadNodes[i]; dead {
			continue
		}
		if !r.acked[i] {
			return false
		}
	}
	return true
}

func (r *Root) reportsComplete() bool {
	for i := 0; i < r.firstLayer; i++ {
		if _, dead := r.deadNodes[i]; dead {
			continue
		}
		if _, ok := r.reports[i]; !ok {
			return false
		}
	}
	return true
}

// OnWaitReport collects one node's wait report; when every live node
// reported it runs graph detection and returns the Result (nil otherwise).
// Reports of stale epochs are discarded.
func (r *Root) OnWaitReport(rep dws.WaitReport) *Result {
	if r.phase != awaitingReports || rep.Epoch != r.epoch {
		return nil
	}
	r.reports[rep.Node] = rep
	if !r.reportsComplete() {
		return nil
	}
	return r.finish()
}

// OnNodeDown records a crashed first-layer node: detection proceeds
// without it and results become partial. When the crash completes the
// current phase (the dead node was the last missing acker or reporter),
// the return value tells the driver what to do next: ackDone means
// broadcast RequestWaits for the current epoch.
func (r *Root) OnNodeDown(node int, ranks []int) (ackDone bool) {
	if _, seen := r.deadNodes[node]; seen {
		return false
	}
	r.deadNodes[node] = append([]int(nil), ranks...)
	switch r.phase {
	case awaitingAcks:
		if r.acksComplete() {
			r.phase = awaitingReports
			r.acksDone = time.Now()
			r.gatherStart = r.acksDone
			return true
		}
	case awaitingReports:
		if r.reportsComplete() {
			r.finish()
		}
	}
	return false
}

// SetEngines configures the verdict engine selection ("", "wfg", "cmh",
// or "all"; empty means the WFG reference) and whether every detection
// additionally runs all engines and cross-checks their verdicts. Call
// before the tool starts (not concurrency-safe afterwards).
func (r *Root) SetEngines(sel string, differential bool) {
	r.engineSel = sel
	r.differential = differential
}

// AddEngine registers an additional snapshot engine for differential
// runs. This is the seeded-deviation test hook: injecting a deliberately
// wrong engine must make the differential oracle report a deviation.
func (r *Root) AddEngine(e engine.Engine) {
	r.extraEngines = append(r.extraEngines, e)
}

// DroppedResults returns the number of completed detections the driver
// failed to consume (see finish). Only read after the tool stopped.
func (r *Root) DroppedResults() int { return r.droppedResults }

// resultDeliveryTimeout bounds how long finish blocks on a slow driver
// before counting the result as dropped. Generous: the driver's main loop
// services Results continuously, so hitting this means the driver is
// wedged, and the root goroutine must not wedge with it. A variable so
// tests can exercise the drop path without the full wait.
var resultDeliveryTimeout = 5 * time.Second

// finish runs the analysis and publishes the result. Delivery is
// reliable: a completed detection is a fact the driver must observe, so
// finish blocks (bounded) rather than silently dropping the result when
// the channel is momentarily full; an expired wait is counted in
// droppedResults instead of vanishing.
func (r *Root) finish() *Result {
	res := r.analyze()
	r.phase = idle
	select {
	case r.Results <- res:
		return res
	default:
	}
	t := time.NewTimer(resultDeliveryTimeout)
	defer t.Stop()
	select {
	case r.Results <- res:
	case <-t.C:
		r.droppedResults++
	}
	return res
}

// analyze builds the WFG from the gathered reports and checks for deadlock.
func (r *Root) analyze() *Result {
	res := &Result{Entries: make(map[int]dws.WaitEntry), Epoch: r.epoch}
	res.Timings.Synchronization = r.acksDone.Sub(r.began)
	res.Timings.WFGGather = time.Since(r.gatherStart)

	// Degraded mode: ranks hosted by crashed first-layer nodes have an
	// unknown wait state. Their report (if any arrived before the crash)
	// is discarded as untrustworthy.
	for _, ranks := range r.deadNodes {
		res.UnknownRanks = append(res.UnknownRanks, ranks...)
	}
	sort.Ints(res.UnknownRanks)
	res.Partial = len(res.UnknownRanks) > 0

	buildStart := time.Now()
	// Index blocked collective participants per wave for target expansion.
	type wave struct {
		comm trace.CommID
		w    int
	}
	inWave := map[wave]map[int]bool{}
	var all []dws.WaitEntry
	var finished []int
	crashedEntries := map[int]dws.WaitEntry{}
	stalledEntries := map[int]dws.WaitEntry{}
	for node, rep := range r.reports {
		if _, dead := r.deadNodes[node]; dead {
			continue
		}
		res.LostMessages += rep.UnmatchedSends
		for _, e := range rep.Entries {
			if e.State == dws.Finished {
				finished = append(finished, e.Rank)
				continue
			}
			if e.State == dws.Crashed {
				crashedEntries[e.Rank] = e
				continue
			}
			if e.State == dws.Stalled {
				stalledEntries[e.Rank] = e
				continue
			}
			if e.State != dws.Blocked {
				continue
			}
			all = append(all, e)
			if e.IsColl {
				k := wave{e.CollComm, e.CollWave}
				if inWave[k] == nil {
					inWave[k] = map[int]bool{}
				}
				inWave[k][e.Rank] = true
			}
		}
	}

	// The expansion below fills an engine.Snapshot — the engine-neutral
	// wait-state view every detection engine analyzes — instead of writing
	// straight into a graph, so independent engines cannot inherit a
	// graph-build bug from the reference.
	snap := &engine.Snapshot{
		Procs:    r.p,
		Blocked:  make(map[int]engine.Wait),
		Finished: finished,
	}
	// expTargets records each blocked rank's fully expanded target list,
	// for the failure-blocked reverse reachability below.
	expTargets := map[int][]int{}
	for _, e := range all {
		res.Entries[e.Rank] = e
		res.Blocked = append(res.Blocked, e.Rank)
		targets := append([]int(nil), e.Targets...)
		if len(e.WildComms) > 0 || len(e.ResolvedSrcs) > 0 || e.IsColl {
			seen := make(map[int]bool, len(targets)+4)
			for _, t := range targets {
				seen[t] = true
			}
			add := func(m int) {
				if m != e.Rank && !seen[m] {
					seen[m] = true
					targets = append(targets, m)
				}
			}
			for _, wc := range e.WildComms {
				for _, m := range r.groupOrWorld(wc) {
					add(m)
				}
			}
			for _, rs := range e.ResolvedSrcs {
				grp := r.groupOrWorld(rs.Comm)
				if rs.Src >= 0 && rs.Src < len(grp) {
					add(grp[rs.Src])
				}
			}
			if e.IsColl {
				k := wave{e.CollComm, e.CollWave}
				for _, m := range r.groupOrWorld(e.CollComm) {
					if !inWave[k][m] {
						add(m)
					}
				}
			}
		}
		sem := waitstate.AndWait
		if e.Sem == dws.SemOr {
			sem = waitstate.OrWait
		}
		snap.Blocked[e.Rank] = engine.Wait{Sem: sem, Targets: targets, Desc: e.Desc}
		expTargets[e.Rank] = targets
	}
	// Crashed application ranks enter the graph as permanently blocked
	// sinks with a *known* cause (unlike Unknown): an AND-wait on the rank
	// itself is never satisfiable, so the dead rank stays in the deadlock
	// residue and everything transitively waiting on it with it. The
	// root's own RankDown record is merged with report entries, so the
	// death survives even when the hosting tool node died afterwards.
	dead := make(map[int]int, len(r.deadRanks))
	for rk, lc := range r.deadRanks {
		dead[rk] = lc
	}
	for rk, e := range crashedEntries {
		if _, ok := dead[rk]; !ok {
			dead[rk] = e.LastCall
		}
	}
	res.DeadRanks = make([]int, 0, len(dead))
	for rk := range dead {
		res.DeadRanks = append(res.DeadRanks, rk)
	}
	sort.Ints(res.DeadRanks)
	if len(dead) > 0 {
		res.DeadLastCalls = dead
	}
	for _, rk := range res.DeadRanks {
		e, ok := crashedEntries[rk]
		if !ok {
			e = dws.WaitEntry{
				Rank: rk, State: dws.Crashed, LastCall: dead[rk],
				Desc: fmt.Sprintf("rank %d crashed after %d MPI calls", rk, dead[rk]),
			}
		}
		res.Entries[rk] = e
		res.Blocked = append(res.Blocked, rk)
		snap.Blocked[rk] = engine.Wait{Sem: waitstate.AndWait, Targets: []int{rk}, Desc: e.Desc}
		snap.Dead = append(snap.Dead, rk)
		expTargets[rk] = []int{rk}
	}
	// Stalled ranks are reported but never enter the graph: they may
	// resume, so treating them as blocked could fabricate a deadlock.
	for rk := range stalledEntries {
		res.StalledRanks = append(res.StalledRanks, rk)
		res.Entries[rk] = stalledEntries[rk]
	}
	sort.Ints(res.StalledRanks)
	snap.Stalled = res.StalledRanks
	// Unknown ranks enter the graph as permanently blocked sinks: an
	// OR-wait over the empty set is never satisfiable, so they are never
	// released and anything waiting on them stays deadlocked — the
	// conservative reading of "we cannot observe this rank anymore". (An
	// AND-wait over the empty set would be the opposite: released
	// immediately.) Ranks already modeled as Crashed keep that richer
	// classification.
	for _, u := range res.UnknownRanks {
		if _, isDead := dead[u]; isDead {
			continue
		}
		e := dws.WaitEntry{
			Rank: u, State: dws.Unknown, Sem: dws.SemOr,
			Desc: "wait state unknown (hosting tool node crashed)",
		}
		res.Entries[u] = e
		res.Blocked = append(res.Blocked, u)
		snap.Blocked[u] = engine.Wait{Sem: waitstate.OrWait, Desc: e.Desc}
		snap.Unknown = append(snap.Unknown, u)
	}
	sort.Ints(res.Blocked)
	g := engine.BuildWFG(snap)
	res.Arcs = g.Arcs()
	res.Timings.GraphBuild = time.Since(buildStart)

	checkStart := time.Now()
	// The WFG release fixpoint is the reference engine; the graph it built
	// is reused below for cycle extraction, grouping, and DOT output.
	refDead := g.Deadlocked()
	ref := engine.Finding{
		Engine:     "wfg",
		Verdict:    engine.Classify(snap, refDead),
		Deadlocked: refDead,
	}
	primary := ref
	if extra := r.engineList(); len(extra) > 0 {
		findings := engine.RunAll(extra, engine.Input{Snapshot: snap})
		res.EngineVerdicts = map[string]string{"wfg": ref.VerdictString()}
		for _, f := range findings {
			res.EngineVerdicts[f.Engine] = f.VerdictString()
			if r.engineSel == f.Engine && f.Err == nil {
				primary = f
			}
		}
		if r.differential {
			res.EngineDeviations = engine.Deviations(ref, extra, findings)
		}
	}
	res.Verdict = primary.Verdict
	res.Deadlocked = primary.Deadlocked
	res.Deadlock = len(res.Deadlocked) > 0
	if res.Deadlock {
		res.Cycle = g.Cycle(res.Deadlocked)
		res.Groups = g.Groups(res.Deadlocked)
	}
	res.Timings.DeadlockCheck = time.Since(checkStart)

	// A deadlock residue containing crashed ranks is a failure-induced
	// deadlock, not a communication deadlock: name the live ranks
	// transitively blocked on the dead ones.
	if res.Verdict == VerdictDeadlockByFailure {
		inDead := make(map[int]bool, len(res.Deadlocked))
		for _, d := range res.Deadlocked {
			inDead[d] = true
		}
		var seeds []int
		for _, rk := range res.DeadRanks {
			if inDead[rk] {
				seeds = append(seeds, rk)
			}
		}
		res.FailureBlocked = failureBlocked(seeds, inDead, expTargets)
	}

	if res.Deadlock {
		outStart := time.Now()
		res.UnexpectedMatches = findUnexpectedMatches(all)
		cg := g.Simplify(res.Deadlocked)
		res.Summary = cg.Summary()
		var sb strings.Builder
		if cg.DOT(&sb) == nil {
			res.SimplifiedDOT = sb.String()
		}
		res.DOT = report.DOT(g, res.Deadlocked)
		res.HTML = report.HTML(&report.Data{
			Procs:             r.p,
			Deadlocked:        res.Deadlocked,
			Cycle:             res.Cycle,
			Entries:           res.Entries,
			UnexpectedMatches: res.UnexpectedMatches,
			Arcs:              res.Arcs,
			Partial:           res.Partial,
			UnknownRanks:      res.UnknownRanks,
			DeadRanks:         res.DeadRanks,
			DeadLastCalls:     res.DeadLastCalls,
			FailureBlocked:    res.FailureBlocked,
			StalledRanks:      res.StalledRanks,
		})
		res.Timings.OutputGeneration = time.Since(outStart)
	}
	return res
}

// engineList returns the additional engines to run beside the WFG
// reference, per the configured selection. The reference itself always
// runs (its graph also drives output generation).
func (r *Root) engineList() []engine.Engine {
	var out []engine.Engine
	switch {
	case r.differential || r.engineSel == "all":
		out = []engine.Engine{engine.CMH{}, engine.TwoCycle{}}
	case r.engineSel == "cmh":
		out = []engine.Engine{engine.CMH{}}
	}
	return append(out, r.extraEngines...)
}

// failureBlocked computes the live ranks transitively blocked on a crashed
// rank: reverse reachability from the dead seeds over the expanded target
// lists, restricted to the deadlocked set (where every wait is known to be
// permanently unsatisfiable).
func failureBlocked(seeds []int, inDead map[int]bool, targets map[int][]int) []int {
	deadSet := make(map[int]bool, len(seeds))
	reached := make(map[int]bool, len(seeds))
	for _, d := range seeds {
		deadSet[d] = true
		reached[d] = true
	}
	for changed := true; changed; {
		changed = false
		for rk, ts := range targets {
			if !inDead[rk] || reached[rk] {
				continue
			}
			for _, t := range ts {
				if reached[t] {
					reached[rk] = true
					changed = true
					break
				}
			}
		}
	}
	out := make([]int, 0, len(reached))
	for rk := range reached {
		if !deadSet[rk] {
			out = append(out, rk)
		}
	}
	sort.Ints(out)
	return out
}

// groupOrWorld returns the registry group, falling back to the full world
// when the communicator is unknown (should not happen for sealed comms).
func (r *Root) groupOrWorld(c trace.CommID) []int {
	if g := r.coll.Group(c); g != nil {
		return g
	}
	world := make([]int, r.p)
	for i := range world {
		world[i] = i
	}
	return world
}

// findUnexpectedMatches applies the Section 3.3 definition to the blocked
// entries: a blocked wildcard receive whose recorded match is not active,
// while a blocked (hence active) send of another rank could match it.
// Blocked sends are indexed by (destination, communicator) up front, so
// each wildcard receive only scans its own candidates — the p²-arc
// wildcard stress case (Fig. 10) used to pay a full O(n²) entry scan here.
func findUnexpectedMatches(entries []dws.WaitEntry) []report.UnexpectedMatch {
	type destComm struct {
		dest int
		comm trace.CommID
	}
	sendsTo := map[destComm][]*dws.WaitEntry{}
	for i := range entries {
		s := &entries[i]
		if !s.Kind.IsSend() || len(s.Targets) == 0 {
			continue
		}
		k := destComm{dest: s.Targets[0], comm: s.Comm}
		sendsTo[k] = append(sendsTo[k], s)
	}
	var out []report.UnexpectedMatch
	for _, e := range entries {
		if !e.IsWildcardRecv || e.MatchedSendProc < 0 {
			continue
		}
		for _, s := range sendsTo[destComm{dest: e.Rank, comm: e.Comm}] {
			if s.Rank == e.Rank {
				continue
			}
			if s.Rank == e.MatchedSendProc && s.TS == e.MatchedSendTS {
				continue // that IS the recorded match
			}
			if e.Tag != trace.AnyTag && s.Tag != e.Tag {
				continue
			}
			out = append(out, report.UnexpectedMatch{
				RecvRank: e.Rank, RecvTS: e.TS,
				MatchedSendRank: e.MatchedSendProc, MatchedSendTS: e.MatchedSendTS,
				ActiveSendRank: s.Rank, ActiveSendTS: s.TS,
			})
		}
	}
	return out
}
