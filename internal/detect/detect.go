// Package detect implements the root-side deadlock detection of Section 5:
// the timeout-triggered consistent-state protocol, gathering of wait-for
// information, construction of the AND⊕OR wait-for graph, the deadlock
// criterion, and the generation of the user-facing outputs — with the
// per-phase timings the paper reports in Figures 10(b) and 11(b)
// (Synchronization, WFG gather, Graph build, Deadlock check, Output
// generation).
package detect

import (
	"sort"
	"strings"
	"time"

	"dwst/internal/collmatch"
	"dwst/internal/dws"
	"dwst/internal/report"
	"dwst/internal/trace"
	"dwst/internal/waitstate"
	"dwst/internal/wfg"
)

// Timings is the per-phase breakdown of one detection run.
type Timings struct {
	Synchronization  time.Duration // consistent-state protocol (Fig. 8)
	WFGGather        time.Duration // receiving wait-for info of all processes
	GraphBuild       time.Duration // building the wait-for graph
	DeadlockCheck    time.Duration // the graph search (release fixpoint)
	OutputGeneration time.Duration // HTML report + DOT graph
}

// Total sums all phases.
func (t Timings) Total() time.Duration {
	return t.Synchronization + t.WFGGather + t.GraphBuild + t.DeadlockCheck + t.OutputGeneration
}

// Result is the outcome of one detection run.
type Result struct {
	// Deadlock reports whether a deadlock (cycle/knot residue) was found.
	Deadlock bool
	// Deadlocked lists the deadlocked ranks (ascending).
	Deadlocked []int
	// Blocked lists all blocked ranks, including non-deadlocked ones.
	Blocked []int
	// Cycle is one dependency cycle within the deadlocked set.
	Cycle []int
	// Groups decomposes the deadlocked set into independent clusters
	// (strongly connected components of the restricted wait-for graph).
	Groups [][]int
	// Entries are the blocked ranks' wait conditions by rank.
	Entries map[int]dws.WaitEntry
	// UnexpectedMatches lists Section 3.3 situations found in the state.
	UnexpectedMatches []report.UnexpectedMatch
	// Arcs is the wait-for graph size (p² for the wildcard stress case).
	Arcs int
	// LostMessages counts sends that never matched a receive, summed over
	// all nodes (meaningful for detections after the application finished).
	LostMessages int
	// HTML and DOT are the generated outputs (only for deadlocks).
	HTML string
	DOT  string
	// SimplifiedDOT is the class-compressed wait-for graph (the paper's
	// Sec. 6 future work), and Summary its one-line description.
	SimplifiedDOT string
	Summary       string
	// Timings is the phase breakdown.
	Timings Timings
}

// TriggerDetection is the control message the driver injects into the root
// when the event-quiescence timeout fires.
type TriggerDetection struct{}

// Root is the root node's tool state: collective matching completion, the
// communicator registry, and the detection state machine. All methods run
// on the root's TBON goroutine.
type Root struct {
	p          int
	firstLayer int
	coll       *collmatch.Root

	phase       phase
	began       time.Time
	ackCount    int
	acksDone    time.Time
	reports     map[int]dws.WaitReport
	gatherStart time.Time

	// Results delivers one Result per detection run (including runs that
	// found no deadlock) to the driver.
	Results chan *Result

	mismatches []collmatch.Mismatch
}

type phase int

const (
	idle phase = iota
	awaitingAcks
	awaitingReports
)

// NewRoot creates the root state for p ranks and the given number of
// first-layer nodes.
func NewRoot(p, firstLayer int) *Root {
	return &Root{
		p:          p,
		firstLayer: firstLayer,
		coll:       collmatch.NewRoot(p),
		Results:    make(chan *Result, 4),
	}
}

// Group exposes the communicator registry.
func (r *Root) Group(c trace.CommID) []int { return r.coll.Group(c) }

// OnReady processes an aggregated collectiveReady and returns the Acks to
// broadcast. Call-signature conflicts are recorded as mismatches.
func (r *Root) OnReady(m collmatch.Ready) []collmatch.Ack {
	acks, mism := r.coll.OnReady(m)
	if mism != nil {
		r.OnMismatch(*mism)
	}
	return acks
}

// OnMember processes a communicator-registry report.
func (r *Root) OnMember(m collmatch.Member) []collmatch.Ack { return r.coll.OnMember(m) }

// OnMismatch records a collective call mismatch (MUST's collective
// verification check). Duplicates for the same wave are collapsed.
func (r *Root) OnMismatch(m collmatch.Mismatch) {
	for _, have := range r.mismatches {
		if have.Comm == m.Comm && have.Wave == m.Wave {
			return
		}
	}
	r.mismatches = append(r.mismatches, m)
}

// Mismatches returns the recorded collective call mismatches. Only read
// after the tool stopped (the root goroutine owns the slice while running).
func (r *Root) Mismatches() []collmatch.Mismatch { return r.mismatches }

// Start begins a detection run; returns false if one is already running.
func (r *Root) Start() bool {
	if r.phase != idle {
		return false
	}
	r.phase = awaitingAcks
	r.began = time.Now()
	r.ackCount = 0
	r.reports = make(map[int]dws.WaitReport, r.firstLayer)
	return true
}

// OnAck processes an ackConsistentState; returns true when all first-layer
// nodes acknowledged (the driver then broadcasts RequestWaits).
func (r *Root) OnAck(a dws.AckConsistentState) bool {
	if r.phase != awaitingAcks {
		return false
	}
	r.ackCount += a.Count
	if r.ackCount < r.firstLayer {
		return false
	}
	r.phase = awaitingReports
	r.acksDone = time.Now()
	r.gatherStart = r.acksDone
	return true
}

// OnWaitReport collects one node's wait report; when all nodes reported it
// runs graph detection and returns the Result (nil otherwise).
func (r *Root) OnWaitReport(rep dws.WaitReport) *Result {
	if r.phase != awaitingReports {
		return nil
	}
	r.reports[rep.Node] = rep
	if len(r.reports) < r.firstLayer {
		return nil
	}
	res := r.analyze()
	r.phase = idle
	select {
	case r.Results <- res:
	default:
	}
	return res
}

// analyze builds the WFG from the gathered reports and checks for deadlock.
func (r *Root) analyze() *Result {
	res := &Result{Entries: make(map[int]dws.WaitEntry)}
	res.Timings.Synchronization = r.acksDone.Sub(r.began)
	res.Timings.WFGGather = time.Since(r.gatherStart)

	buildStart := time.Now()
	// Index blocked collective participants per wave for target expansion.
	type wave struct {
		comm trace.CommID
		w    int
	}
	inWave := map[wave]map[int]bool{}
	var all []dws.WaitEntry
	var finished []int
	for _, rep := range r.reports {
		res.LostMessages += rep.UnmatchedSends
		for _, e := range rep.Entries {
			if e.State == dws.Finished {
				finished = append(finished, e.Rank)
				continue
			}
			if e.State != dws.Blocked {
				continue
			}
			all = append(all, e)
			if e.IsColl {
				k := wave{e.CollComm, e.CollWave}
				if inWave[k] == nil {
					inWave[k] = map[int]bool{}
				}
				inWave[k][e.Rank] = true
			}
		}
	}

	g := wfg.New(r.p)
	for _, f := range finished {
		g.SetFinished(f)
	}
	for _, e := range all {
		res.Entries[e.Rank] = e
		res.Blocked = append(res.Blocked, e.Rank)
		targets := append([]int(nil), e.Targets...)
		if len(e.WildComms) > 0 || len(e.ResolvedSrcs) > 0 || e.IsColl {
			seen := make(map[int]bool, len(targets)+4)
			for _, t := range targets {
				seen[t] = true
			}
			add := func(m int) {
				if m != e.Rank && !seen[m] {
					seen[m] = true
					targets = append(targets, m)
				}
			}
			for _, wc := range e.WildComms {
				for _, m := range r.groupOrWorld(wc) {
					add(m)
				}
			}
			for _, rs := range e.ResolvedSrcs {
				grp := r.groupOrWorld(rs.Comm)
				if rs.Src >= 0 && rs.Src < len(grp) {
					add(grp[rs.Src])
				}
			}
			if e.IsColl {
				k := wave{e.CollComm, e.CollWave}
				for _, m := range r.groupOrWorld(e.CollComm) {
					if !inWave[k][m] {
						add(m)
					}
				}
			}
		}
		sem := waitstate.AndWait
		if e.Sem == dws.SemOr {
			sem = waitstate.OrWait
		}
		g.SetBlocked(e.Rank, sem, targets, e.Desc)
	}
	sort.Ints(res.Blocked)
	res.Arcs = g.Arcs()
	res.Timings.GraphBuild = time.Since(buildStart)

	checkStart := time.Now()
	res.Deadlocked = g.Deadlocked()
	res.Deadlock = len(res.Deadlocked) > 0
	if res.Deadlock {
		res.Cycle = g.Cycle(res.Deadlocked)
		res.Groups = g.Groups(res.Deadlocked)
	}
	res.Timings.DeadlockCheck = time.Since(checkStart)

	if res.Deadlock {
		outStart := time.Now()
		res.UnexpectedMatches = findUnexpectedMatches(all)
		cg := g.Simplify(res.Deadlocked)
		res.Summary = cg.Summary()
		var sb strings.Builder
		if cg.DOT(&sb) == nil {
			res.SimplifiedDOT = sb.String()
		}
		res.DOT = report.DOT(g, res.Deadlocked)
		res.HTML = report.HTML(&report.Data{
			Procs:             r.p,
			Deadlocked:        res.Deadlocked,
			Cycle:             res.Cycle,
			Entries:           res.Entries,
			UnexpectedMatches: res.UnexpectedMatches,
			Arcs:              res.Arcs,
		})
		res.Timings.OutputGeneration = time.Since(outStart)
	}
	return res
}

// groupOrWorld returns the registry group, falling back to the full world
// when the communicator is unknown (should not happen for sealed comms).
func (r *Root) groupOrWorld(c trace.CommID) []int {
	if g := r.coll.Group(c); g != nil {
		return g
	}
	world := make([]int, r.p)
	for i := range world {
		world[i] = i
	}
	return world
}

// findUnexpectedMatches applies the Section 3.3 definition to the blocked
// entries: a blocked wildcard receive whose recorded match is not active,
// while a blocked (hence active) send of another rank could match it.
func findUnexpectedMatches(entries []dws.WaitEntry) []report.UnexpectedMatch {
	var out []report.UnexpectedMatch
	for _, e := range entries {
		if !e.IsWildcardRecv || e.MatchedSendProc < 0 {
			continue
		}
		for _, s := range entries {
			if !s.Kind.IsSend() || s.Rank == e.Rank {
				continue
			}
			if s.Rank == e.MatchedSendProc && s.TS == e.MatchedSendTS {
				continue // that IS the recorded match
			}
			if s.Comm != e.Comm || len(s.Targets) == 0 || s.Targets[0] != e.Rank {
				continue
			}
			if e.Tag != trace.AnyTag && s.Tag != e.Tag {
				continue
			}
			out = append(out, report.UnexpectedMatch{
				RecvRank: e.Rank, RecvTS: e.TS,
				MatchedSendRank: e.MatchedSendProc, MatchedSendTS: e.MatchedSendTS,
				ActiveSendRank: s.Rank, ActiveSendTS: s.TS,
			})
		}
	}
	return out
}
