package detect

import (
	"strings"
	"testing"
	"time"

	"dwst/internal/dws"
	"dwst/internal/engine"
)

// TestEngineSelectionCMH verifies that -engine=cmh makes the probe
// engine's finding primary while still recording the reference verdict.
func TestEngineSelectionCMH(t *testing.T) {
	r := NewRoot(2, 1)
	r.SetEngines("cmh", false)
	res := runDetection(t, r, []dws.WaitReport{
		{Node: 0, Entries: []dws.WaitEntry{blockedSend(0, 1), blockedSend(1, 0)}},
	})
	if !res.Deadlock || res.Verdict != VerdictDeadlock {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Deadlocked) != 2 || res.Deadlocked[0] != 0 || res.Deadlocked[1] != 1 {
		t.Fatalf("deadlocked = %v", res.Deadlocked)
	}
	if res.EngineVerdicts["wfg"] != "deadlock" || res.EngineVerdicts["cmh"] != "deadlock" {
		t.Fatalf("engine verdicts = %v", res.EngineVerdicts)
	}
	if len(res.EngineDeviations) != 0 {
		t.Fatalf("non-differential run reported deviations: %v", res.EngineDeviations)
	}
	// Graph outputs still come from the reference graph.
	if res.HTML == "" || res.DOT == "" || len(res.Cycle) != 2 {
		t.Fatal("outputs missing under cmh selection")
	}
}

// TestDifferentialAgreement: a differential run over a clean deadlock
// snapshot records every engine's verdict and zero deviations.
func TestDifferentialAgreement(t *testing.T) {
	r := NewRoot(4, 2)
	r.SetEngines("", true)
	res := runDetection(t, r, []dws.WaitReport{
		{Node: 0, Entries: []dws.WaitEntry{blockedSend(0, 3), running(1)}},
		{Node: 1, Entries: []dws.WaitEntry{running(2), blockedSend(3, 0)}},
	})
	if !res.Deadlock {
		t.Fatalf("res = %+v", res)
	}
	for _, e := range []string{"wfg", "cmh", "twocycle"} {
		if _, ok := res.EngineVerdicts[e]; !ok {
			t.Fatalf("engine %s missing from verdicts %v", e, res.EngineVerdicts)
		}
	}
	if len(res.EngineDeviations) != 0 {
		t.Fatalf("deviations on agreeing engines: %v", res.EngineDeviations)
	}
}

// wrongEngine always claims the opposite of a deadlock verdict — the
// seeded fault that must surface as a deviation.
type wrongEngine struct{}

func (wrongEngine) Name() string       { return "seeded-wrong" }
func (wrongEngine) Needs() engine.Need { return engine.NeedSnapshot }
func (wrongEngine) Analyze(in engine.Input) (engine.Verdict, []int, error) {
	return engine.VerdictNone, nil, nil
}

// TestSeededDeviationIsDetected is the acceptance check for the
// differential oracle: an intentionally broken engine injected via
// AddEngine must produce a deviation on a deadlocking snapshot.
func TestSeededDeviationIsDetected(t *testing.T) {
	r := NewRoot(2, 1)
	r.SetEngines("", true)
	r.AddEngine(wrongEngine{})
	res := runDetection(t, r, []dws.WaitReport{
		{Node: 0, Entries: []dws.WaitEntry{blockedSend(0, 1), blockedSend(1, 0)}},
	})
	if !res.Deadlock {
		t.Fatalf("res = %+v", res)
	}
	if res.EngineVerdicts["seeded-wrong"] != "none" {
		t.Fatalf("engine verdicts = %v", res.EngineVerdicts)
	}
	found := false
	for _, d := range res.EngineDeviations {
		if strings.Contains(d, "seeded-wrong") {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded deviation not reported: %v", res.EngineDeviations)
	}
}

// TestNodeDownCompletesReports is the OnNodeDown regression test: when
// the crash of a first-layer node removes the last missing *reporter*,
// detection must complete and yield exactly one Result with the crashed
// node's ranks classified Unknown and the report marked Partial — and the
// driver must observe that result on the channel.
func TestNodeDownCompletesReports(t *testing.T) {
	r := NewRoot(4, 2)
	if !r.Start() {
		t.Fatal("Start refused")
	}
	// Both nodes ack; node 1 then dies before reporting.
	if r.OnAck(dws.AckConsistentState{Node: 0, Epoch: r.Epoch()}) {
		t.Fatal("acks complete after one ack")
	}
	if !r.OnAck(dws.AckConsistentState{Node: 1, Epoch: r.Epoch()}) {
		t.Fatal("acks not complete after both")
	}
	if res := r.OnWaitReport(dws.WaitReport{Node: 0, Epoch: r.Epoch(),
		Entries: []dws.WaitEntry{blockedSend(0, 2), running(1)}}); res != nil {
		t.Fatal("detection finished with a report still missing")
	}
	if r.OnNodeDown(1, []int{2, 3}) {
		t.Fatal("ackDone must be false in the reporting phase")
	}
	// The crash completed the round: exactly one result on the channel.
	var res *Result
	select {
	case res = <-r.Results:
	default:
		t.Fatal("no result delivered after the completing crash")
	}
	select {
	case extra := <-r.Results:
		t.Fatalf("second result delivered: %+v", extra)
	default:
	}
	if !res.Partial || len(res.UnknownRanks) != 2 {
		t.Fatalf("partial=%v unknown=%v", res.Partial, res.UnknownRanks)
	}
	if res.UnknownRanks[0] != 2 || res.UnknownRanks[1] != 3 {
		t.Fatalf("unknown ranks = %v", res.UnknownRanks)
	}
	// Rank 0 waits on unknown rank 2 (an OR-∅ sink): deadlocked, and the
	// entries classify 2 and 3 as Unknown.
	if !res.Deadlock {
		t.Fatalf("res = %+v", res)
	}
	for _, u := range []int{2, 3} {
		if res.Entries[u].State != dws.Unknown {
			t.Fatalf("rank %d entry = %+v", u, res.Entries[u])
		}
	}
	// A duplicate crash notification must not produce another result.
	if r.OnNodeDown(1, []int{2, 3}) {
		t.Fatal("duplicate OnNodeDown returned ackDone")
	}
	select {
	case extra := <-r.Results:
		t.Fatalf("duplicate crash re-ran detection: %+v", extra)
	default:
	}
}

// TestNodeDownCompletesAcks covers the other completing transition: the
// dead node was the last missing *acker*, so the driver must broadcast
// RequestWaits next (ackDone true), and the round then completes from the
// surviving node's report alone.
func TestNodeDownCompletesAcks(t *testing.T) {
	r := NewRoot(4, 2)
	if !r.Start() {
		t.Fatal("Start refused")
	}
	if r.OnAck(dws.AckConsistentState{Node: 0, Epoch: r.Epoch()}) {
		t.Fatal("acks complete after one ack")
	}
	if !r.OnNodeDown(1, []int{2, 3}) {
		t.Fatal("crash of the last missing acker must return ackDone")
	}
	res := r.OnWaitReport(dws.WaitReport{Node: 0, Epoch: r.Epoch(),
		Entries: []dws.WaitEntry{running(0), running(1)}})
	if res == nil {
		t.Fatal("surviving node's report did not complete the round")
	}
	if !res.Partial || len(res.UnknownRanks) != 2 {
		t.Fatalf("partial=%v unknown=%v", res.Partial, res.UnknownRanks)
	}
}

// TestResultDeliveryBlocksThenDelivers: with the channel momentarily
// full, finish must wait for the driver instead of dropping the result.
func TestResultDeliveryBlocksThenDelivers(t *testing.T) {
	r := NewRoot(2, 1)
	for i := 0; i < cap(r.Results); i++ {
		r.Results <- &Result{}
	}
	drained := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		for i := 0; i < cap(r.Results); i++ {
			<-r.Results
		}
		close(drained)
	}()
	res := runDetection(t, r, []dws.WaitReport{
		{Node: 0, Entries: []dws.WaitEntry{blockedSend(0, 1), blockedSend(1, 0)}},
	})
	<-drained
	select {
	case got := <-r.Results:
		if got != res {
			t.Fatal("delivered result differs")
		}
	case <-time.After(time.Second):
		t.Fatal("result never delivered")
	}
	if n := r.DroppedResults(); n != 0 {
		t.Fatalf("dropped = %d, want 0", n)
	}
}

// TestResultDropIsCounted: a wedged driver (channel full past the
// delivery timeout) must not wedge the root; the loss is counted.
func TestResultDropIsCounted(t *testing.T) {
	old := resultDeliveryTimeout
	resultDeliveryTimeout = 30 * time.Millisecond
	defer func() { resultDeliveryTimeout = old }()

	r := NewRoot(2, 1)
	for i := 0; i < cap(r.Results); i++ {
		r.Results <- &Result{}
	}
	res := runDetection(t, r, []dws.WaitReport{
		{Node: 0, Entries: []dws.WaitEntry{blockedSend(0, 1), blockedSend(1, 0)}},
	})
	if res == nil {
		t.Fatal("finish must still return the result to the caller")
	}
	if n := r.DroppedResults(); n != 1 {
		t.Fatalf("dropped = %d, want 1", n)
	}
}
