// Package journal provides a bounded, append-only per-node journal of the
// inputs that shape first-layer tool-node state: injected rank events,
// intralayer peer messages, and downward collective acks. A crashed node's
// replacement rebuilds exact state by restoring the latest checkpoint base
// and deterministically replaying the suffix recorded after it.
//
// The journal is deliberately dependency-free: payloads are opaque `any`
// values and the checkpoint base is whatever memento the owner stores
// (internal/core stores a dws.Node deep copy). Three properties matter:
//
//   - Dedup: entries are identified by (origin, seq). Each origin issues
//     monotonically increasing sequence numbers and the reliable transport
//     delivers per-origin traffic in order, so an entry with seq <= the
//     highest already accepted from that origin is a duplicate (a
//     retransmission or a replay-induced resend) and is dropped.
//   - Watermark GC: Checkpoint folds the current suffix into a new base and
//     advances the watermark past it, so live memory is proportional to
//     work recorded since the last checkpoint (outstanding ops), not to
//     run length. The owner checkpoints on op-retirement thresholds and
//     snapshot-epoch commits.
//   - Fencing: every append carries an incarnation token. Fence() bumps the
//     incarnation when a replacement node takes over, so a zombie writer —
//     a node declared dead by the supervisor but still limping through its
//     last dispatch — cannot corrupt the journal mid-replay.
package journal

import "sync"

// Entry is one recorded input. Kind and Payload are owner-defined; the
// journal itself only interprets Origin and Seq (for dedup).
type Entry struct {
	Origin  int
	Seq     uint64
	Kind    int
	Payload any
}

// Journal records the inputs of one first-layer node slot. It survives the
// node it describes: the slot's journal persists across respawns, with the
// incarnation fence distinguishing writers.
type Journal struct {
	mu          sync.Mutex
	incarnation uint64
	base        any            // latest checkpoint memento (nil until first Checkpoint)
	watermark   uint64         // total entries folded into base so far
	suffix      []Entry        // entries accepted after the last checkpoint
	lastSeq     map[int]uint64 // per-origin highest accepted seq
	seenOrigin  map[int]bool   // origins with at least one accepted entry
	highWater   int            // max live suffix length ever observed
	appended    uint64
	duplicates  uint64
}

// New returns an empty journal at incarnation 1.
func New() *Journal {
	return &Journal{
		incarnation: 1,
		lastSeq:     make(map[int]uint64),
		seenOrigin:  make(map[int]bool),
	}
}

// Incarnation returns the current fence token. Appends carrying any other
// value are rejected.
func (j *Journal) Incarnation() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.incarnation
}

// Fence invalidates the current incarnation and returns the new one. Called
// when a replacement node takes over the slot, before replay begins.
func (j *Journal) Fence() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.incarnation++
	return j.incarnation
}

// Append records an entry. It returns (accepted, fenced): accepted is false
// for (origin, seq) duplicates, fenced is true when inc is stale — a fenced
// append is never recorded.
func (j *Journal) Append(inc uint64, e Entry) (accepted, fenced bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if inc != j.incarnation {
		return false, true
	}
	if j.seenOrigin[e.Origin] && e.Seq <= j.lastSeq[e.Origin] {
		j.duplicates++
		return false, false
	}
	j.seenOrigin[e.Origin] = true
	j.lastSeq[e.Origin] = e.Seq
	j.suffix = append(j.suffix, e)
	j.appended++
	if len(j.suffix) > j.highWater {
		j.highWater = len(j.suffix)
	}
	return true, false
}

// NextSeq returns the next unused sequence number for an origin. A new
// incarnation's writer seeds its per-origin counters from this, continuing
// the dead incarnation's numbering so dedup keeps working across respawns.
func (j *Journal) NextSeq(origin int) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.seenOrigin[origin] {
		return j.lastSeq[origin] + 1
	}
	return 0
}

// Checkpoint replaces the base memento with a fresh one and retires the
// suffix it subsumes, advancing the watermark. The caller must pass a
// memento capturing node state after every currently journaled entry.
func (j *Journal) Checkpoint(inc uint64, base any) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if inc != j.incarnation {
		return false
	}
	j.base = base
	j.watermark += uint64(len(j.suffix))
	j.suffix = j.suffix[:0]
	return true
}

// Snapshot returns the checkpoint base and a copy of the suffix for replay.
func (j *Journal) Snapshot() (base any, suffix []Entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	suffix = append([]Entry(nil), j.suffix...)
	return j.base, suffix
}

// Len is the current live suffix length (entries not yet folded into the
// base). Owners use it against a cap to trigger checkpoints.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.suffix)
}

// HighWater is the maximum live suffix length ever observed — the bounded-
// memory witness: under watermark GC it tracks outstanding work, not total
// events appended.
func (j *Journal) HighWater() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.highWater
}

// Watermark is the total number of entries folded into checkpoint bases.
func (j *Journal) Watermark() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.watermark
}

// Appended is the total number of entries ever accepted.
func (j *Journal) Appended() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Duplicates is the number of (origin, seq) duplicates dropped.
func (j *Journal) Duplicates() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.duplicates
}
