package journal

import "testing"

func TestAppendDedupByOriginSeq(t *testing.T) {
	j := New()
	inc := j.Incarnation()
	if ok, _ := j.Append(inc, Entry{Origin: 7, Seq: 1, Payload: "a"}); !ok {
		t.Fatal("first append rejected")
	}
	if ok, _ := j.Append(inc, Entry{Origin: 7, Seq: 1, Payload: "a"}); ok {
		t.Fatal("duplicate (origin,seq) accepted")
	}
	if ok, _ := j.Append(inc, Entry{Origin: 7, Seq: 0, Payload: "stale"}); ok {
		t.Fatal("stale seq accepted")
	}
	// Same seq from a different origin is a distinct entry.
	if ok, _ := j.Append(inc, Entry{Origin: 8, Seq: 1, Payload: "b"}); !ok {
		t.Fatal("distinct origin rejected")
	}
	if got := j.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	if got := j.Duplicates(); got != 2 {
		t.Fatalf("duplicates = %d, want 2", got)
	}
}

func TestSeqZeroAccepted(t *testing.T) {
	j := New()
	inc := j.Incarnation()
	if ok, _ := j.Append(inc, Entry{Origin: 3, Seq: 0}); !ok {
		t.Fatal("seq 0 from a fresh origin must be accepted")
	}
	if ok, _ := j.Append(inc, Entry{Origin: 3, Seq: 0}); ok {
		t.Fatal("seq 0 duplicate accepted")
	}
}

func TestFenceRejectsStaleWriter(t *testing.T) {
	j := New()
	old := j.Incarnation()
	neu := j.Fence()
	if neu == old {
		t.Fatal("fence did not change incarnation")
	}
	if ok, fenced := j.Append(old, Entry{Origin: 1, Seq: 1}); ok || !fenced {
		t.Fatalf("stale-incarnation append: accepted=%v fenced=%v, want false/true", ok, fenced)
	}
	if ok, fenced := j.Append(neu, Entry{Origin: 1, Seq: 1}); !ok || fenced {
		t.Fatalf("current-incarnation append: accepted=%v fenced=%v, want true/false", ok, fenced)
	}
	if j.Checkpoint(old, "stale") {
		t.Fatal("stale-incarnation checkpoint accepted")
	}
}

func TestCheckpointAdvancesWatermarkAndBoundsSuffix(t *testing.T) {
	j := New()
	inc := j.Incarnation()
	for s := uint64(1); s <= 100; s++ {
		j.Append(inc, Entry{Origin: 1, Seq: s})
		if j.Len() >= 10 {
			if !j.Checkpoint(inc, int(s)) {
				t.Fatal("checkpoint rejected")
			}
		}
	}
	if hw := j.HighWater(); hw > 10 {
		t.Fatalf("high water %d: watermark GC failed to bound the suffix", hw)
	}
	if wm := j.Watermark(); wm != 100 {
		t.Fatalf("watermark %d, want 100 (all entries folded)", wm)
	}
	base, suffix := j.Snapshot()
	if base != 100 {
		t.Fatalf("base %v, want 100", base)
	}
	if len(suffix) != 0 {
		t.Fatalf("suffix len %d, want 0", len(suffix))
	}
	if j.Appended() != 100 {
		t.Fatalf("appended %d, want 100", j.Appended())
	}
}

func TestSnapshotCopiesSuffix(t *testing.T) {
	j := New()
	inc := j.Incarnation()
	j.Append(inc, Entry{Origin: 1, Seq: 1, Payload: "x"})
	_, suf := j.Snapshot()
	suf[0].Payload = "mutated"
	_, suf2 := j.Snapshot()
	if suf2[0].Payload != "x" {
		t.Fatal("Snapshot returned an aliased suffix")
	}
}
