package journal

// Checkpoint-watermark GC under concurrent writers: many origins append
// while a checkpointer repeatedly folds the suffix into the base. Run
// under -race, this is the journal's concurrency contract: no entry is
// lost or double-counted across checkpoint boundaries, the suffix high
// water stays bounded by the checkpoint cadence rather than the total
// volume, per-origin dedup holds under interleaving, and a fence cuts off
// stale writers mid-stream.

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestConcurrentAppendAndCheckpoint(t *testing.T) {
	const (
		writers   = 8
		perWriter = 2000
		checkpCap = 64
		dupStride = 5 // every 5th append is retried (a duplicate)
	)

	j := New()
	inc := j.Incarnation()

	var checkpoints atomic.Int64
	// Any writer observing the cap folds the suffix, so checkpoints race
	// each other and every append — the owner's op-retirement threshold,
	// exercised from all sides at once.
	maybeCheckpoint := func() {
		if j.Len() >= checkpCap {
			if j.Checkpoint(inc, struct{}{}) {
				checkpoints.Add(1)
			}
		}
	}

	var wrWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wrWg.Add(1)
		go func() {
			defer wrWg.Done()
			for s := uint64(1); s <= perWriter; s++ {
				acc, fenced := j.Append(inc, Entry{Origin: w, Seq: s, Kind: 1, Payload: s})
				if !acc || fenced {
					t.Errorf("writer %d seq %d: accepted=%v fenced=%v", w, s, acc, fenced)
					return
				}
				if s%dupStride == 0 {
					// A retransmission of the entry just accepted must be
					// dropped even when checkpoints race the append.
					if acc, _ := j.Append(inc, Entry{Origin: w, Seq: s, Kind: 1, Payload: s}); acc {
						t.Errorf("writer %d seq %d: duplicate accepted", w, s)
						return
					}
				}
				maybeCheckpoint()
			}
		}()
	}
	wrWg.Wait()

	// Final fold so watermark + suffix is easy to check.
	if !j.Checkpoint(inc, struct{}{}) {
		t.Fatal("final checkpoint rejected")
	}

	const total = writers * perWriter
	if got := j.Appended(); got != total {
		t.Errorf("appended = %d, want %d", got, total)
	}
	wantDups := uint64(writers * (perWriter / dupStride))
	if got := j.Duplicates(); got != wantDups {
		t.Errorf("duplicates = %d, want %d", got, wantDups)
	}
	// Conservation across GC: every accepted entry is either folded into
	// the base (watermark) or still live — and after the final fold, all
	// are folded.
	if wm := j.Watermark(); wm != total {
		t.Errorf("watermark = %d, want %d (suffix len %d)", wm, total, j.Len())
	}
	if l := j.Len(); l != 0 {
		t.Errorf("suffix length after final checkpoint = %d, want 0", l)
	}
	if checkpoints.Load() == 0 {
		t.Error("checkpointer never fired; the test did not exercise concurrent GC")
	}
	// Bounded memory: the high water must track the checkpoint cadence,
	// not total volume. Between a writer observing the cap and folding,
	// every other writer can slip in one more append, so the bound is the
	// cap plus a writer's worth of slack — far from the un-GC'd total.
	if hw := j.HighWater(); hw > checkpCap+2*writers {
		t.Errorf("suffix high water %d exceeds checkpoint cap %d + slack (total %d)", hw, checkpCap, total)
	}

	// Per-origin seq numbering continues past the folds.
	for w := 0; w < writers; w++ {
		if next := j.NextSeq(w); next != perWriter+1 {
			t.Errorf("NextSeq(%d) = %d, want %d", w, next, perWriter+1)
		}
	}
}

func TestFenceCutsOffConcurrentStaleWriter(t *testing.T) {
	j := New()
	oldInc := j.Incarnation()

	var zombieAccepted atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A zombie writer limping through its last dispatch: it keeps
		// appending until the fence rejects it — so the cut-off is
		// guaranteed to be exercised, however the race schedules.
		for s := uint64(1); ; s++ {
			acc, fenced := j.Append(oldInc, Entry{Origin: 1, Seq: s})
			if fenced {
				return
			}
			if !acc {
				t.Errorf("zombie seq %d: rejected but not fenced", s)
				return
			}
			zombieAccepted.Add(1)
		}
	}()
	newInc := j.Fence()
	wg.Wait() // the zombie has observed the fence; lastSeq is now stable
	// The replacement seeds its numbering from the journal and writes on.
	start := j.NextSeq(1)
	for i := uint64(0); i < 100; i++ {
		if acc, fenced := j.Append(newInc, Entry{Origin: 1, Seq: start + i}); !acc || fenced {
			t.Fatalf("replacement append %d: accepted=%v fenced=%v", i, acc, fenced)
		}
	}

	// Everything the zombie wrote before the fence plus the replacement's
	// writes — and nothing after the fence — is in the journal.
	if got, zombie := j.Appended(), zombieAccepted.Load(); got != zombie+100 {
		t.Errorf("appended = %d, want %d accepted-before-fence + 100", got, zombie)
	}
	wantStart := uint64(0) // NextSeq of an unseen origin
	if zombieAccepted.Load() > 0 {
		wantStart = zombieAccepted.Load() + 1
	}
	if start != wantStart {
		t.Errorf("replacement start seq %d does not continue the zombie's %d accepted entries", start, zombieAccepted.Load())
	}
}
