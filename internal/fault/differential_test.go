package fault_test

// Differential-oracle suite: every run executes all applicable detection
// engines (the WFG reference, the Chandy–Misra–Haas probe engine, the
// two-cycle screen) on the same wait-state snapshots, plus the static
// pre-run queue-matching pass, and any disagreement with the reference is
// a hard failure. The census runs the three canonical workloads across
// many seeds fault-free (the paper's equivalence bar), and a second leg
// re-checks agreement while the fault plane batters the tool links — the
// oracle must hold on degraded-but-healed runs too.

import (
	"testing"
	"time"

	"dwst/internal/testseed"
	"dwst/internal/workload"
	"dwst/must"
)

func assertNoDeviation(t *testing.T, rep *must.Report) {
	t.Helper()
	if rep.Err != nil {
		t.Fatalf("run failed: %v", rep.Err)
	}
	for _, d := range rep.EngineDeviations {
		t.Errorf("engine deviation: %s", d)
	}
	if t.Failed() {
		t.Fatalf("engine verdicts: %v", rep.EngineVerdicts)
	}
	if len(rep.EngineVerdicts) == 0 {
		t.Fatal("differential run recorded no engine verdicts")
	}
	if rep.DroppedResults != 0 {
		t.Fatalf("dropped %d detection results", rep.DroppedResults)
	}
}

// TestDifferentialFaultFreeCensus is the acceptance census: the three
// canonical workloads across many timing seeds (LinkDelay varies the
// interleaving), every applicable engine agreeing with the reference on
// every detection — zero deviations, every run.
func TestDifferentialFaultFreeCensus(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(30)
	if testing.Short() {
		hi = 5
	}
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
				t.Parallel()
				rep := runBounded(t, c.procs, c.prog, must.Options{
					FanIn:        c.fanIn,
					Timeout:      20 * time.Millisecond,
					LinkDelay:    time.Duration(seed%5) * 100 * time.Microsecond,
					Differential: true,
				})
				if !rep.Deadlock {
					t.Fatalf("seed %d: expected a deadlock, verdicts %v", seed, rep.EngineVerdicts)
				}
				assertNoDeviation(t, rep)
				if v := rep.EngineVerdicts["cmh"]; v != "deadlock" {
					t.Fatalf("seed %d: cmh verdict %q", seed, v)
				}
			})
		})
	}
}

// TestDifferentialCleanRun: a deadlock-free workload under the oracle —
// every engine must agree there is nothing to report, and the static
// pass must accept the deterministic Sendrecv trace.
func TestDifferentialCleanRun(t *testing.T) {
	rep := runBounded(t, 6, workload.Stress(30), must.Options{
		FanIn:        2,
		Timeout:      20 * time.Millisecond,
		Differential: true,
	})
	if rep.Deadlock || rep.Verdict != must.VerdictNone {
		t.Fatalf("clean run reported %v", rep.Verdict)
	}
	assertNoDeviation(t, rep)
	if v := rep.EngineVerdicts["static"]; v != "none" {
		t.Fatalf("static verdict %q, want none (trace is deterministic)", v)
	}
}

// TestChaosDifferentialLinkFaults is the faulted leg: drop, dup, reorder
// and jitter on every tool link with the differential oracle armed. The
// reliable transport heals the faults, so every engine must still agree.
func TestChaosDifferentialLinkFaults(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(30)
	if testing.Short() {
		hi = 3
	}
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
				t.Parallel()
				rep := runBounded(t, c.procs, c.prog, must.Options{
					FanIn:        c.fanIn,
					Timeout:      20 * time.Millisecond,
					Differential: true,
					Fault: &must.FaultPlan{
						Seed: seed,
						Rules: []must.FaultRule{{
							Drop:      0.01,
							Dup:       0.01,
							Reorder:   0.05,
							JitterMax: 2 * time.Millisecond,
						}},
					},
				})
				if !rep.Deadlock {
					t.Fatalf("seed %d: expected a deadlock, verdicts %v", seed, rep.EngineVerdicts)
				}
				assertNoDeviation(t, rep)
			})
		})
	}
}

// TestChaosDifferentialRankCrash: deadlock-by-failure runs under the
// oracle. The engines see crashed ranks as AND-self sinks and must agree
// on the by-failure classification; the static pass is skipped at the
// run level (the runtime observed a different program than the recorder).
func TestChaosDifferentialRankCrash(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(20)
	if testing.Short() {
		hi = 3
	}
	testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
		t.Parallel()
		rep := runBounded(t, 6, workload.Stress(40), must.Options{
			FanIn:        2,
			Timeout:      20 * time.Millisecond,
			Differential: true,
			Fault: &must.FaultPlan{
				Seed:        seed,
				RankCrashes: []must.RankCrash{{Rank: int(seed % 6), AtCall: 5 + int(seed%20)}},
			},
		})
		if rep.Verdict != must.VerdictDeadlockByFailure {
			t.Fatalf("seed %d: verdict %v, want deadlock-by-failure", seed, rep.Verdict)
		}
		assertNoDeviation(t, rep)
		if v := rep.EngineVerdicts["cmh"]; v != "deadlock-by-failure" {
			t.Fatalf("seed %d: cmh verdict %q", seed, v)
		}
	})
}
