package fault_test

// Chaos suite: run real workloads through the full distributed tool while
// the fault plane drops, duplicates, reorders and delays tool-link
// messages, and crashes tool nodes. The reliable link layer and the
// snapshot-epoch machinery must make every injected fault invisible — the
// reported verdict and deadlocked set must equal a fault-free reference
// run — except for first-layer crashes, which must surface as an honest
// partial report instead.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"dwst/internal/dws"
	"dwst/internal/testseed"
	"dwst/internal/workload"
	"dwst/mpi"
	"dwst/must"
)

// runBounded runs the tool under a watchdog: a hung run (lost control
// message, undetected crash, livelocked retry loop) fails the test
// instead of stalling the whole suite.
func runBounded(t *testing.T, procs int, prog mpi.Program, opts must.Options) *must.Report {
	t.Helper()
	done := make(chan *must.Report, 1)
	go func() { done <- must.Run(procs, prog, opts) }()
	select {
	case rep := <-done:
		return rep
	case <-time.After(30 * time.Second):
		t.Fatal("tool run hung under fault injection")
		return nil
	}
}

type chaosCase struct {
	name  string
	procs int
	fanIn int
	prog  mpi.Program
}

func chaosCases() []chaosCase {
	return []chaosCase{
		{"recvrecv", 8, 2, workload.RecvRecvDeadlock()},
		{"fig2b", 3, 2, workload.Fig2b()},
		{"wildcard", 8, 4, workload.WildcardDeadlock()},
	}
}

// verdict is the part of a report that faults must never change.
type verdict struct {
	Deadlock      bool
	PotentialOnly bool
	Deadlocked    []int
}

func verdictOf(rep *must.Report) verdict {
	return verdict{rep.Deadlock, rep.PotentialOnly, append([]int(nil), rep.Deadlocked...)}
}

// TestChaosLinkFaultsPreserveVerdict is the headline chaos property: with
// drop+dup+reorder+jitter on every tool link, the retransmitting transport
// must deliver the exact fault-free verdict, never a partial report.
func TestChaosLinkFaultsPreserveVerdict(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(60)
	if testing.Short() {
		hi = 6
	}
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref := verdictOf(runBounded(t, c.procs, c.prog, must.Options{FanIn: c.fanIn, Timeout: 20 * time.Millisecond}))
			if !ref.Deadlock {
				t.Fatalf("reference run found no deadlock")
			}
			testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
				t.Parallel()
				rep := runBounded(t, c.procs, c.prog, must.Options{
					FanIn:   c.fanIn,
					Timeout: 20 * time.Millisecond,
					Fault: &must.FaultPlan{
						Seed: seed,
						Rules: []must.FaultRule{{
							Drop:      0.01,
							Dup:       0.01,
							Reorder:   0.01,
							JitterMax: 100 * time.Microsecond,
						}},
					},
				})
				if rep.Partial {
					t.Fatalf("link faults alone must never degrade the report (unknown ranks %v)", rep.UnknownRanks)
				}
				if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
					t.Fatalf("verdict diverged under faults:\n got %+v\nwant %+v", got, ref)
				}
			})
		})
	}
}

// TestChaosHeavierFaultsStillConverge pushes per-class rates higher on one
// workload as a stress margin (fewer seeds — each run retransmits a lot).
func TestChaosHeavierFaultsStillConverge(t *testing.T) {
	hi := testseed.ChaosRuns(10)
	if testing.Short() {
		hi = 2
	}
	prog := workload.RecvRecvDeadlock()
	ref := verdictOf(runBounded(t, 8, prog, must.Options{FanIn: 2, Timeout: 20 * time.Millisecond}))
	testseed.Run(t, 0, hi, func(t *testing.T, seed int64) {
		t.Parallel()
		rep := runBounded(t, 8, prog, must.Options{
			FanIn:   2,
			Timeout: 20 * time.Millisecond,
			Fault: &must.FaultPlan{
				Seed:  seed,
				Rules: []must.FaultRule{{Drop: 0.05, Dup: 0.05, Reorder: 0.05}},
			},
		})
		if rep.Partial {
			t.Fatal("heavy link faults degraded the report")
		}
		if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
			t.Fatalf("verdict diverged:\n got %+v\nwant %+v", got, ref)
		}
	})
}

// TestChaosFirstLayerCrashDegradesHonestly crashes a first-layer node.
// The run must still terminate and report the deadlock, but flagged
// partial with exactly the crashed node's ranks unknown.
func TestChaosFirstLayerCrashDegradesHonestly(t *testing.T) {
	for _, node := range []int{0, 1, 3} {
		node := node
		t.Run(fmt.Sprintf("node=%d", node), func(t *testing.T) {
			rep := runBounded(t, 8, workload.RecvRecvDeadlock(), must.Options{
				FanIn:   2,
				Timeout: 20 * time.Millisecond,
				Fault: &must.FaultPlan{
					Seed: 1,
					// Generous death-declaration window: under -race the
					// scheduler can starve a healthy node long enough to
					// miss several default heartbeats.
					Heartbeat: 5 * time.Millisecond,
					DeadAfter: 400 * time.Millisecond,
					Crashes:   []must.Crash{{Layer: 0, Index: node, After: 15 * time.Millisecond}},
				},
			})
			if !rep.Partial {
				t.Fatal("first-layer crash must flag the report partial")
			}
			want := []int{2 * node, 2*node + 1} // fan-in 2: node hosts ranks [2n, 2n+2)
			if !reflect.DeepEqual(rep.UnknownRanks, want) {
				t.Fatalf("unknown ranks %v, want %v", rep.UnknownRanks, want)
			}
			if !rep.Deadlock {
				t.Fatal("the surviving ranks' deadlock must still be reported")
			}
			for _, u := range want {
				found := false
				for _, d := range rep.Deadlocked {
					if d == u {
						found = true
					}
				}
				if !found {
					t.Fatalf("unknown rank %d must be conservatively reported deadlocked (got %v)", u, rep.Deadlocked)
				}
			}
		})
	}
}

// TestChaosInteriorCrashIsHealed crashes an interior (non-first-layer)
// node on a deadlock-free workload: the supervisor reattaches its children
// to the grandparent and the redirected transport replays pending frames,
// so the run completes with a full (non-partial) clean verdict.
func TestChaosInteriorCrashIsHealed(t *testing.T) {
	rep := runBounded(t, 16, workload.Stress(10), must.Options{
		FanIn:            2,
		Timeout:          20 * time.Millisecond,
		SnapshotDeadline: 500 * time.Millisecond,
		Fault: &must.FaultPlan{
			Seed:      1,
			Heartbeat: 5 * time.Millisecond,
			DeadAfter: 400 * time.Millisecond,
			Crashes:   []must.Crash{{Layer: 1, Index: 0, After: 10 * time.Millisecond}},
		},
	})
	if rep.Partial {
		t.Fatalf("interior crash must be healed, not degrade the report (unknown %v)", rep.UnknownRanks)
	}
	if rep.Deadlock {
		t.Fatalf("false deadlock after healed interior crash: ranks %v", rep.Deadlocked)
	}
	if len(rep.CallMismatches) != 0 {
		t.Fatalf("spurious mismatches after healed crash: %v", rep.CallMismatches)
	}
}

// TestChaosSnapshotEpochRetry kills the reliable transport and drops
// exactly one AckConsistentState, so the first snapshot attempt can never
// complete. The root's deadline must abort it and the retry under a fresh
// epoch must succeed.
func TestChaosSnapshotEpochRetry(t *testing.T) {
	rep := runBounded(t, 8, workload.RecvRecvDeadlock(), must.Options{
		FanIn:            2,
		Timeout:          20 * time.Millisecond,
		SnapshotDeadline: 150 * time.Millisecond,
		Fault: &must.FaultPlan{
			Seed:              1,
			DisableRetransmit: true,
			Rules: []must.FaultRule{{
				Drop:     1,
				MaxDrops: 1,
				Match: func(msg any) bool {
					_, ok := msg.(dws.AckConsistentState)
					return ok
				},
			}},
		},
	})
	if rep.SnapshotRetries < 1 {
		t.Fatalf("snapshot retries = %d, want >= 1 (the lost ack must force an epoch retry)", rep.SnapshotRetries)
	}
	if !rep.Deadlock {
		t.Fatal("retried snapshot must still find the deadlock")
	}
	if rep.Partial {
		t.Fatal("epoch retry must not degrade the report")
	}
}
