package fault_test

// Batch-equivalence suite: hot-path batching (slab delivery on tool
// queues, per-destination coalescing of wait-state messages, slab-level
// transport acknowledgements) is a pure transport optimization — it must
// never change what the tool concludes. Every test here runs the same
// seeded scenario twice, batch on and batch off, and requires identical
// verdicts; fault legs additionally require batching not to degrade the
// report where the unbatched path does not.

import (
	"reflect"
	"testing"
	"time"

	"dwst/internal/testseed"
	"dwst/internal/workload"
	"dwst/must"
)

// batchPairOpts runs one scenario under both batching modes and returns
// the two reports (batch-on first).
func batchPairOpts(t *testing.T, c chaosCase, opts must.Options) (on, off *must.Report) {
	t.Helper()
	opts.FanIn = c.fanIn
	opts.Batch = must.BatchOn
	on = runBounded(t, c.procs, c.prog, opts)
	opts.Batch = must.BatchOff
	off = runBounded(t, c.procs, c.prog, opts)
	return on, off
}

// TestBatchEquivalenceFaultFree is the base property: on fault-free runs
// the two modes agree on the verdict AND on the wait-state message census
// — coalescing packs messages into fewer envelopes but must neither drop
// nor invent any.
func TestBatchEquivalenceFaultFree(t *testing.T) {
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			on, off := batchPairOpts(t, c, must.Options{Timeout: 20 * time.Millisecond})
			if got, want := verdictOf(on), verdictOf(off); !reflect.DeepEqual(got, want) {
				t.Fatalf("verdict diverged:\n batch-on  %+v\n batch-off %+v", got, want)
			}
			if on.ToolMessages != off.ToolMessages {
				t.Fatalf("message census diverged:\n batch-on  %+v\n batch-off %+v",
					on.ToolMessages, off.ToolMessages)
			}
		})
	}
}

// TestBatchEquivalenceLinkFaults drives both modes through the standard
// link-fault cocktail (drop+dup+reorder, retransmitting transport) across
// seeds: the verdicts must match each other and the fault-free reference,
// with no partial reports. The census is not compared — retransmission
// timing differs between modes, so handshake message counts legitimately
// vary; what may not vary is the conclusion.
func TestBatchEquivalenceLinkFaults(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(20)
	if testing.Short() {
		hi = 3
	}
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref := verdictOf(runBounded(t, c.procs, c.prog,
				must.Options{FanIn: c.fanIn, Timeout: 20 * time.Millisecond}))
			testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
				t.Parallel()
				opts := must.Options{
					Timeout: 20 * time.Millisecond,
					Fault: &must.FaultPlan{
						Seed: seed,
						Rules: []must.FaultRule{{
							Drop:      0.01,
							Dup:       0.01,
							Reorder:   0.01,
							JitterMax: 100 * time.Microsecond,
						}},
					},
				}
				on, off := batchPairOpts(t, c, opts)
				if on.Partial || off.Partial {
					t.Fatalf("link faults degraded a report (batch-on partial=%v, batch-off partial=%v)",
						on.Partial, off.Partial)
				}
				if got, want := verdictOf(on), verdictOf(off); !reflect.DeepEqual(got, want) {
					t.Fatalf("verdict diverged under link faults:\n batch-on  %+v\n batch-off %+v", got, want)
				}
				if got := verdictOf(on); !reflect.DeepEqual(got, ref) {
					t.Fatalf("verdict diverged from fault-free reference:\n got  %+v\n want %+v", got, ref)
				}
			})
		})
	}
}

// TestBatchEquivalenceRankCrashes exercises the application-plane fault
// path: a crashed rank must yield the same deadlock-by-failure verdict
// and dead-rank set in both modes.
func TestBatchEquivalenceRankCrashes(t *testing.T) {
	cases := []struct {
		name   string
		procs  int
		fanIn  int
		rank   int
		atCall int
	}{
		{"clean/rank2", 8, 2, 2, 3},
		{"clean/rank7", 8, 4, 7, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cc := chaosCase{c.name, c.procs, c.fanIn, workload.Stress(6)}
			opts := must.Options{
				Timeout: 20 * time.Millisecond,
				Fault: &must.FaultPlan{
					Seed:        1,
					RankCrashes: []must.RankCrash{{Rank: c.rank, AtCall: c.atCall}},
				},
			}
			on, off := batchPairOpts(t, cc, opts)
			for _, rep := range []*must.Report{on, off} {
				if rep.Verdict != must.VerdictDeadlockByFailure {
					t.Fatalf("verdict = %v, want deadlock-by-failure", rep.Verdict)
				}
			}
			if !reflect.DeepEqual(on.DeadRanks, off.DeadRanks) {
				t.Fatalf("dead ranks diverged: batch-on %v, batch-off %v", on.DeadRanks, off.DeadRanks)
			}
			if got, want := verdictOf(on), verdictOf(off); !reflect.DeepEqual(got, want) {
				t.Fatalf("verdict diverged:\n batch-on  %+v\n batch-off %+v", got, want)
			}
		})
	}
}

// TestBatchEquivalenceRecoveryReplay crashes a first-layer tool node with
// Recover set in both modes: journal replay must rebuild the node exactly
// under batching too (batched peer traffic is journaled as one filtered
// entry; replay runs under the Discard surface), yielding the identical
// non-partial verdict across seeds.
func TestBatchEquivalenceRecoveryReplay(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(15)
	if testing.Short() {
		hi = 3
	}
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			firstLayer := (c.procs + c.fanIn - 1) / c.fanIn
			testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
				t.Parallel()
				node := int(seed) % firstLayer
				after := time.Duration(5+seed%10) * time.Millisecond
				opts := must.Options{
					Timeout:          20 * time.Millisecond,
					SnapshotDeadline: 500 * time.Millisecond,
					Fault:            recoverPlan(seed, node, after),
				}
				on, off := batchPairOpts(t, c, opts)
				for name, rep := range map[string]*must.Report{"batch-on": on, "batch-off": off} {
					if rep.Partial || len(rep.UnknownRanks) != 0 {
						t.Fatalf("%s: recovered crash degraded the report (unknown %v)", name, rep.UnknownRanks)
					}
				}
				if got, want := verdictOf(on), verdictOf(off); !reflect.DeepEqual(got, want) {
					t.Fatalf("verdict diverged after recovery:\n batch-on  %+v\n batch-off %+v", got, want)
				}
			})
		})
	}
}
