package fault_test

// Chaos over TCP: the same verdict-preservation properties as the channel
// chaos suite, but with the tool split across a real coordinator and worker
// fabrics on loopback sockets, and with the adversary operating at the wire
// level — a frame-parsing proxy dropping, duplicating and delaying real
// bytes, plus full partitions and abrupt worker kills. Workers run
// in-process (goroutines around must.RunWorker) so seed sweeps stay cheap;
// the separate-OS-process path is covered by the cmd smoke tests.

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dwst/internal/fault"
	"dwst/internal/testseed"
	"dwst/internal/workload"
	"dwst/mpi"
	"dwst/must"
)

// tcpHarness configures one TCP-transport run with in-process workers.
type tcpHarness struct {
	workers int
	budget  time.Duration

	// wirePlan, when non-nil, interposes a WireProxy between the workers
	// and the coordinator.
	wirePlan                     *fault.Plan
	partitionAfter, partitionFor time.Duration

	// haltWorker (-1 = none) abruptly kills that worker after haltAfter —
	// the in-process analogue of `kill -9` on a mustnode. haltWorkers
	// kills several (worker → delay); the two compose.
	haltWorker  int
	haltAfter   time.Duration
	haltWorkers map[int]time.Duration

	// respawnMax, when > 0, turns on the in-process supervisor — the test
	// mirror of mustrun's process supervisor: a worker run that exits with
	// an error is re-admitted under a coordinator-minted recovery token,
	// up to respawnMax times per slot. recoverOn forces coordinator
	// journaling even with respawnMax 0; journalCap bounds it (0 =
	// default). killEvery re-kills every respawned incarnation after that
	// delay — the respawn-storm knob.
	respawnMax int
	recoverOn  bool
	journalCap int
	killEvery  time.Duration

	ctl *must.NetControl

	mu         sync.Mutex
	proxy      *fault.WireProxy
	respawns   int
	workerErrs []error
}

// runSlot is one worker slot's supervised life: run, and while the respawn
// budget lasts, re-admit a dead incarnation under a fresh recovery token.
// A mint failure (journal overflowed, slot degraded) ends supervision and
// leaves the slot to the coordinator's degradation budget.
func (h *tcpHarness) runSlot(dial string, w int, halt <-chan struct{}) error {
	err := must.RunWorker(dial, w, must.WorkerOptions{Halt: halt})
	for attempt := 1; err != nil && attempt <= h.respawnMax; attempt++ {
		token, terr := h.mintToken(w)
		if terr != nil {
			return err
		}
		var again <-chan struct{}
		if h.killEvery > 0 {
			hc := make(chan struct{})
			time.AfterFunc(h.killEvery, func() { close(hc) })
			again = hc
		}
		h.mu.Lock()
		h.respawns++
		h.mu.Unlock()
		err = must.RunWorker(dial, w, must.WorkerOptions{Halt: again, Resume: token})
	}
	return err
}

// mintToken retries while the coordinator still sees the dead incarnation's
// connection as up (its teardown races the supervisor); any other error is
// final.
func (h *tcpHarness) mintToken(w int) (string, error) {
	var err error
	for i := 0; i < 500; i++ {
		var tok string
		tok, err = h.ctl.RecoveryToken(w)
		if err == nil {
			return tok, nil
		}
		if !strings.Contains(err.Error(), "still connected") {
			return "", err
		}
		time.Sleep(2 * time.Millisecond)
	}
	return "", err
}

// run executes prog over the TCP fabric under a hang watchdog and reaps
// the worker goroutines (and proxy) before returning.
func (h *tcpHarness) run(t *testing.T, procs int, prog mpi.Program, opts must.Options) *must.Report {
	t.Helper()
	if h.workers == 0 {
		h.workers = 2
	}
	h.workerErrs = make([]error, h.workers)
	var wg sync.WaitGroup
	opts.Net = &must.NetOptions{
		Workers:    h.workers,
		Budget:     h.budget,
		Recover:    h.recoverOn || h.respawnMax > 0,
		JournalCap: h.journalCap,
		OnListen: func(addr string) {
			dial := addr
			if h.wirePlan != nil {
				p, err := fault.NewWireProxy(addr, h.wirePlan)
				if err != nil {
					t.Errorf("wire proxy: %v", err)
					return
				}
				h.mu.Lock()
				h.proxy = p
				h.mu.Unlock()
				dial = p.Addr()
				if h.partitionAfter > 0 {
					time.AfterFunc(h.partitionAfter, func() { p.Partition(h.partitionFor) })
				}
			}
			for w := 0; w < h.workers; w++ {
				w := w
				var halt <-chan struct{}
				after, killed := h.haltWorkers[w]
				if w == h.haltWorker {
					after, killed = h.haltAfter, true
				}
				if killed {
					hc := make(chan struct{})
					time.AfterFunc(after, func() { close(hc) })
					halt = hc
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					h.workerErrs[w] = h.runSlot(dial, w, halt)
				}()
			}
		},
	}
	if opts.Net.Recover {
		h.ctl = &must.NetControl{}
		opts.Net.Control = h.ctl
	}
	done := make(chan *must.Report, 1)
	go func() { done <- must.Run(procs, prog, opts) }()
	var rep *must.Report
	select {
	case rep = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("TCP tool run hung")
	}
	wg.Wait()
	h.mu.Lock()
	if h.proxy != nil {
		h.proxy.Close()
	}
	h.mu.Unlock()
	if rep.Err != nil {
		t.Fatalf("TCP run failed to assemble: %v", rep.Err)
	}
	return rep
}

// TestWireTCPMatchesChanVerdicts is the transport-equivalence baseline:
// on a fault-free loopback fabric, every chaos workload must produce the
// exact verdict of its in-process channel-transport reference run.
func TestWireTCPMatchesChanVerdicts(t *testing.T) {
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			opts := must.Options{FanIn: c.fanIn, Timeout: 20 * time.Millisecond}
			refRep := runBounded(t, c.procs, c.prog, opts)
			ref := verdictOf(refRep)
			if !ref.Deadlock {
				t.Fatal("reference run found no deadlock")
			}
			h := &tcpHarness{haltWorker: -1}
			rep := h.run(t, c.procs, c.prog, opts)
			if rep.Partial {
				t.Fatalf("fault-free TCP run degraded (unknown ranks %v)", rep.UnknownRanks)
			}
			if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
				t.Fatalf("TCP verdict diverged from chan:\n got %+v\nwant %+v", got, ref)
			}
			for w, err := range h.workerErrs {
				if err != nil {
					t.Fatalf("worker %d exited with error: %v", w, err)
				}
			}
			if rep.BytesOnWire == 0 {
				t.Fatal("BytesOnWire = 0 on a TCP run")
			}
			if refRep.ToolMessages.Total() > 0 && rep.ToolMessages.Total() == 0 {
				// Workloads whose traffic stays within single leaves
				// legitimately report zero; only a drop relative to the
				// channel reference means worker finals were not merged.
				t.Fatal("ToolMessages = 0: worker final reports were not merged")
			}
		})
	}
}

// TestWireTCPChaosFaultsPreserveVerdict is the headline wire-chaos
// property: with the proxy dropping, duplicating and delaying real frames
// on every connection, the reliable layer must still deliver the exact
// fault-free verdict — never a partial report, never a hang.
func TestWireTCPChaosFaultsPreserveVerdict(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(10)
	if testing.Short() {
		hi = 2
	}
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			opts := must.Options{FanIn: c.fanIn, Timeout: 20 * time.Millisecond}
			ref := verdictOf(runBounded(t, c.procs, c.prog, opts))
			testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
				t.Parallel()
				h := &tcpHarness{
					haltWorker: -1,
					wirePlan: &fault.Plan{
						Seed: seed,
						Rules: []fault.Rule{{
							Drop:      0.02,
							Dup:       0.02,
							JitterMax: 500 * time.Microsecond,
						}},
					},
				}
				rep := h.run(t, c.procs, c.prog, opts)
				if rep.Partial {
					t.Fatalf("wire faults alone must never degrade the report (unknown ranks %v)", rep.UnknownRanks)
				}
				if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
					t.Fatalf("verdict diverged under wire faults:\n got %+v\nwant %+v", got, ref)
				}
			})
		})
	}
}

// TestWireTCPPartitionReconnects severs every worker connection for a
// while (well inside the degradation budget): the fabric must reconnect
// under the same incarnation, retransmit what the partition ate, and
// produce the exact verdict with no degradation.
func TestWireTCPPartitionReconnects(t *testing.T) {
	opts := must.Options{FanIn: 2, Timeout: 20 * time.Millisecond}
	ref := verdictOf(runBounded(t, 8, workload.RecvRecvDeadlock(), opts))
	h := &tcpHarness{
		haltWorker:     -1,
		budget:         5 * time.Second,
		wirePlan:       &fault.Plan{Seed: 1},
		partitionAfter: 30 * time.Millisecond,
		partitionFor:   150 * time.Millisecond,
	}
	rep := h.run(t, 8, workload.RecvRecvDeadlock(), opts)
	if rep.Reconnects == 0 {
		t.Fatal("partition healed without any recorded reconnect")
	}
	if rep.Partial {
		t.Fatalf("partition inside the budget must not degrade the report (unknown %v)", rep.UnknownRanks)
	}
	if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
		t.Fatalf("verdict diverged after partition:\n got %+v\nwant %+v", got, ref)
	}
}

// TestWireTCPWorkerKillDegradesHonestly kills one worker process mid-run
// and never lets it return: past the budget the coordinator must splice
// out the worker's leaves and report their ranks unknown — the TCP
// analogue of the first-layer-crash degradation contract.
func TestWireTCPWorkerKillDegradesHonestly(t *testing.T) {
	h := &tcpHarness{
		budget:     250 * time.Millisecond,
		haltWorker: 1,
		haltAfter:  30 * time.Millisecond,
	}
	rep := h.run(t, 8, workload.RecvRecvDeadlock(), must.Options{
		FanIn:   4, // width0 = 2: worker 1 owns leaf 1 = ranks [4, 8)
		Timeout: 20 * time.Millisecond,
	})
	if !rep.Partial {
		t.Fatal("killed worker past budget must flag the report partial")
	}
	if want := []int{4, 5, 6, 7}; !reflect.DeepEqual(rep.UnknownRanks, want) {
		t.Fatalf("unknown ranks %v, want %v", rep.UnknownRanks, want)
	}
	if !rep.Deadlock {
		t.Fatal("the surviving ranks' deadlock must still be reported")
	}
	if h.workerErrs[1] == nil {
		t.Fatal("halted worker must exit with an error")
	}
}

// TestWireTCPFencingRejectsDuplicateWorker races a second claimant for
// worker slot 0 against the legitimate one: exactly one wins the slot;
// the loser must be rejected permanently with a fencing error, and the
// run must complete with the correct verdict either way.
func TestWireTCPFencingRejectsDuplicateWorker(t *testing.T) {
	opts := must.Options{FanIn: 2, Timeout: 20 * time.Millisecond}
	ref := verdictOf(runBounded(t, 8, workload.RecvRecvDeadlock(), opts))

	var wg sync.WaitGroup
	errs := make([]error, 3) // workers 0, 1, and the duplicate of 0
	opts.Net = &must.NetOptions{
		Workers: 2,
		OnListen: func(addr string) {
			for i, w := range []int{0, 1, 0} {
				i, w := i, w
				wg.Add(1)
				go func() {
					defer wg.Done()
					errs[i] = must.RunWorker(addr, w, must.WorkerOptions{})
				}()
			}
		},
	}
	done := make(chan *must.Report, 1)
	go func() { done <- must.Run(8, workload.RecvRecvDeadlock(), opts) }()
	var rep *must.Report
	select {
	case rep = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("TCP run hung with a duplicate worker dialing")
	}
	wg.Wait()
	if rep.Err != nil {
		t.Fatalf("run failed: %v", rep.Err)
	}
	rejected := 0
	for _, i := range []int{0, 2} {
		if err := errs[i]; err != nil {
			rejected++
			if !strings.Contains(err.Error(), "fenced") {
				t.Fatalf("loser's error %q does not mention fencing", err)
			}
		}
	}
	if rejected != 1 {
		t.Fatalf("%d of the two slot-0 claimants were rejected, want exactly 1 (errs: %v)", rejected, errs)
	}
	if errs[1] != nil {
		t.Fatalf("worker 1 exited with error: %v", errs[1])
	}
	if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
		t.Fatalf("verdict diverged with duplicate claimant:\n got %+v\nwant %+v", got, ref)
	}
}
