package fault

import (
	"testing"
	"time"
)

// drive rolls n decisions on a fresh link for (seed, id, class).
func drive(plan *Plan, id int, class Class, n int, msg any) []Decision {
	l := NewInjector(plan).Link(id, class)
	ds := make([]Decision, n)
	for i := range ds {
		ds[i] = l.Decide(msg)
	}
	return ds
}

func TestDeterministicStreams(t *testing.T) {
	plan := &Plan{Seed: 42, Rules: []Rule{{Drop: 0.3, Dup: 0.2, Reorder: 0.1, JitterMax: time.Millisecond}}}
	a := drive(plan, 5, UpLink, 500, nil)
	b := drive(plan, 5, UpLink, 500, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical links: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Different link id or class must give an independent stream.
	c := drive(plan, 6, UpLink, 500, nil)
	d := drive(plan, 5, DownLink, 500, nil)
	same := func(x []Decision) bool {
		for i := range a {
			if a[i] != x[i] {
				return false
			}
		}
		return true
	}
	if same(c) || same(d) {
		t.Fatal("per-link streams are not independent")
	}
	// Different seed must change the stream.
	e := drive(&Plan{Seed: 43, Rules: plan.Rules}, 5, UpLink, 500, nil)
	if same(e) {
		t.Fatal("seed does not influence the stream")
	}
}

func TestProbabilitiesRoughlyHold(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Drop: 0.25}}}
	ds := drive(plan, 0, AnyLink, 10000, nil)
	drops := 0
	for _, d := range ds {
		if d.Drop {
			drops++
		}
	}
	if drops < 2000 || drops > 3000 {
		t.Fatalf("drop rate %d/10000, want ~2500", drops)
	}
}

func TestMaxDropsBudgetIsShared(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Drop: 1, MaxDrops: 3}}}
	in := NewInjector(plan)
	l1, l2 := in.Link(0, UpLink), in.Link(1, UpLink)
	drops := 0
	for i := 0; i < 50; i++ {
		if l1.Decide(nil).Drop {
			drops++
		}
		if l2.Decide(nil).Drop {
			drops++
		}
	}
	if drops != 3 {
		t.Fatalf("dropped %d messages, budget was 3", drops)
	}
}

func TestClassFilter(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Link: PeerLink, Drop: 1}}}
	if ds := drive(plan, 2, UpLink, 20, nil); ds[0].Drop {
		t.Fatal("peer-only rule dropped an up-link message")
	}
	ds := drive(plan, 2, PeerLink, 20, nil)
	if !ds[0].Drop {
		t.Fatal("peer rule must drop on a peer link")
	}
}

type msgA struct{}
type msgB struct{}

func TestMatchFilterDoesNotPerturbStream(t *testing.T) {
	// A Match-filtered rule consumes the same number of draws whether or
	// not it matches, so the decision for message k is independent of the
	// types of messages 0..k-1.
	match := func(m any) bool { _, ok := m.(msgA); return ok }
	plan := &Plan{Seed: 9, Rules: []Rule{{Drop: 0.5, Match: match}}}
	in := NewInjector(plan)

	// Stream 1: decide B (unmatched), then A.
	l := in.Link(0, UpLink)
	if l.Decide(msgB{}).Drop {
		t.Fatal("unmatched message must never be touched")
	}
	gotA := l.Decide(msgA{})

	// Stream 2: decide A twice; the second A must equal stream 1's.
	l = NewInjector(plan).Link(0, UpLink)
	l.Decide(msgA{})
	wantA := l.Decide(msgA{})
	if gotA != wantA {
		t.Fatalf("draw count depends on Match outcome: %+v vs %+v", gotA, wantA)
	}
}

func TestStallEvery(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{StallEvery: 3, StallFor: time.Millisecond}}}
	ds := drive(plan, 0, AnyLink, 9, nil)
	for i, d := range ds {
		wantStall := (i+1)%3 == 0
		if (d.Stall > 0) != wantStall {
			t.Fatalf("message %d: stall=%v, want %v", i, d.Stall, wantStall)
		}
	}
}

func TestPlanDefaults(t *testing.T) {
	p := &Plan{}
	if p.HeartbeatInterval() != 5*time.Millisecond ||
		p.DeadAfterInterval() != 50*time.Millisecond ||
		p.RetryBaseInterval() != 2*time.Millisecond ||
		p.RetryCapInterval() != 32*time.Millisecond ||
		p.RetryAttempts() != 12 {
		t.Fatal("effective defaults wrong")
	}
	if p.Supervised() {
		t.Fatal("empty plan must not require supervision")
	}
	if !(&Plan{Crashes: []Crash{{}}}).Supervised() {
		t.Fatal("crash plan must require supervision")
	}
	q := &Plan{Heartbeat: time.Millisecond, DeadAfter: 7 * time.Millisecond}
	if q.DeadAfterInterval() != 7*time.Millisecond || !q.Supervised() {
		t.Fatal("explicit overrides ignored")
	}
}
