package fault_test

// Overload chaos suite for the tool plane's resource governor: with the
// memory budget on at its generous default, every verdict must be exactly
// the ungoverned reference (the A/B equivalence contract of -mem-budget=0);
// with a tiny budget or a stalled consumer, the tool must degrade honestly
// — bounded resident bytes, gated intake, counted overflow, an overloaded
// PARTIAL report — and never OOM, never hang, never drop silently.

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"dwst/internal/testseed"
	"dwst/internal/workload"
	"dwst/mpi"
	"dwst/must"
)

// TestOverloadBudgetEquivalence is the headline governance property: the
// default budget is generous enough that governance is pure accounting —
// under link-fault chaos, every workload must reproduce the exact verdict
// of an ungoverned fault-free reference run, with the new high-water stats
// populated and no degradation.
func TestOverloadBudgetEquivalence(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(20)
	if testing.Short() {
		hi = 3
	}
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref := verdictOf(runBounded(t, c.procs, c.prog, must.Options{
				FanIn: c.fanIn, Timeout: 20 * time.Millisecond,
			}))
			if !ref.Deadlock {
				t.Fatal("reference run found no deadlock")
			}
			testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
				t.Parallel()
				rep := runBounded(t, c.procs, c.prog, must.Options{
					FanIn:     c.fanIn,
					Timeout:   20 * time.Millisecond,
					MemBudget: must.DefaultMemBudget,
					Fault: &must.FaultPlan{
						Seed: seed,
						Rules: []must.FaultRule{{
							Drop:      0.01,
							Dup:       0.01,
							Reorder:   0.01,
							JitterMax: 100 * time.Microsecond,
						}},
					},
				})
				if rep.Partial || rep.Overloaded {
					t.Fatalf("default budget degraded the run: partial=%v overloaded=%v overflow=%d",
						rep.Partial, rep.Overloaded, rep.OverflowEvents)
				}
				if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
					t.Fatalf("verdict diverged with governance on:\n got %+v\nwant %+v", got, ref)
				}
				if rep.MemBudget != must.DefaultMemBudget {
					t.Fatalf("report budget %d, want %d", rep.MemBudget, must.DefaultMemBudget)
				}
				if rep.MemHighWater <= 0 {
					t.Fatal("governed run reported no memory high water")
				}
				if rep.MemHighWater > must.DefaultMemBudget {
					t.Fatalf("high water %d exceeds budget without an overload flag", rep.MemHighWater)
				}
			})
		})
	}
}

// TestOverloadBudgetOffIsUngoverned pins the off switch: MemBudget 0 must
// run the legacy unbounded path — no governor, no stats, no flags — and
// produce the reference verdict.
func TestOverloadBudgetOffIsUngoverned(t *testing.T) {
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			rep := runBounded(t, c.procs, c.prog, must.Options{
				FanIn: c.fanIn, Timeout: 20 * time.Millisecond,
			})
			if !rep.Deadlock {
				t.Fatal("reference workload lost its deadlock")
			}
			if rep.MemBudget != 0 || rep.MemHighWater != 0 || rep.OverflowEvents != 0 ||
				rep.GatedWaits != 0 || rep.Overloaded {
				t.Fatalf("ungoverned run leaked governance state: budget=%d hw=%d overflow=%d gated=%d overloaded=%v",
					rep.MemBudget, rep.MemHighWater, rep.OverflowEvents, rep.GatedWaits, rep.Overloaded)
			}
			if len(rep.QueueDepthHW) != 0 || len(rep.QueueBytesHW) != 0 {
				t.Fatalf("ungoverned run reported queue high waters: %v / %v",
					rep.QueueDepthHW, rep.QueueBytesHW)
			}
		})
	}
}

// TestOverloadTinyBudgetDegradesHonestly starves the governor: a budget of
// a few KB forces the intake gate shut and drives tool-internal traffic
// over the limit. The run must still terminate with the full deadlock
// verdict — overflow is accounting, not dropping — and any overflow must
// surface as the overloaded PARTIAL flag pair, never silently.
func TestOverloadTinyBudgetDegradesHonestly(t *testing.T) {
	// A ring that churns before deadlocking, over links that crawl: the
	// churn must transit a tool plane allowed only a few KB of residency.
	prog := func(p *mpi.Proc) {
		n := p.Size()
		right := (p.Rank() + 1) % n
		left := (p.Rank() + n - 1) % n
		for i := 0; i < 30; i++ {
			p.Sendrecv(mpi.Int64(int64(i)), right, 0, left, 0, mpi.CommWorld)
		}
		p.Recv(right, 99, mpi.CommWorld)
		p.Finalize()
	}
	for _, budget := range []int64{2 << 10, 16 << 10} {
		rep := runBounded(t, 8, mpi.Program(prog), must.Options{
			FanIn:     2,
			Timeout:   30 * time.Millisecond,
			LinkDelay: 2 * time.Millisecond,
			MemBudget: budget,
		})
		if !rep.Deadlock || len(rep.Deadlocked) != 8 {
			t.Fatalf("budget=%d: deadlock=%v deadlocked=%v (starvation must throttle, not lose events)",
				budget, rep.Deadlock, rep.Deadlocked)
		}
		if rep.GatedWaits == 0 && rep.OverflowEvents == 0 {
			t.Fatalf("budget=%d: no gated waits and no overflow — the tiny budget never bound", budget)
		}
		if rep.OverflowEvents > 0 && (!rep.Overloaded || !rep.Partial) {
			t.Fatalf("budget=%d: %d overflow events but overloaded=%v partial=%v",
				budget, rep.OverflowEvents, rep.Overloaded, rep.Partial)
		}
		if rep.Overloaded && rep.OverflowEvents == 0 {
			t.Fatalf("budget=%d: overloaded without overflow", budget)
		}
	}
}

// TestOverloadStalledConsumerBoundsMemory is the acceptance drill: a
// high-rate workload into first-layer links that crawl (per-message delay
// on every tool-internal pump — the slow-consumer stall). Without
// governance the queues soak up the whole event stream; with it, resident
// tool-plane bytes must stay inside the budget unless honestly flagged
// overloaded, the intake gate must have engaged, and the process heap must
// stay inside a modest envelope.
func TestOverloadStalledConsumerBoundsMemory(t *testing.T) {
	const budget = int64(64 << 10)

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	stop := make(chan struct{})
	peak := make(chan uint64, 1)
	go func() {
		var hw uint64
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > hw {
				hw = ms.HeapAlloc
			}
			select {
			case <-stop:
				peak <- hw
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()

	rep := runBounded(t, 16, workload.Stress(200), must.Options{
		FanIn:     2,
		Timeout:   30 * time.Millisecond,
		EventBuf:  8,
		LinkDelay: 2 * time.Millisecond,
		MemBudget: budget,
	})
	close(stop)
	heapPeak := <-peak

	if rep.Err != nil {
		t.Fatalf("stalled-consumer run failed: %v", rep.Err)
	}
	if rep.Deadlock {
		t.Fatalf("governance invented a deadlock on a clean workload: %v", rep.Deadlocked)
	}
	if rep.GatedWaits == 0 {
		t.Fatal("the stall never engaged the intake gate — the drill exerted no pressure")
	}
	if rep.MemHighWater <= 0 {
		t.Fatal("no memory high water recorded under stall")
	}
	// The accounting invariant: residency beyond the budget is possible
	// only through counted overflow, which must flag the run overloaded.
	if rep.MemHighWater > budget && !rep.Overloaded {
		t.Fatalf("high water %d exceeds budget %d without the overloaded flag", rep.MemHighWater, budget)
	}
	// The whole point: a sub-megabyte budget must keep the tool plane's
	// heap footprint modest even though the ungoverned stream is much
	// larger. The envelope is generous (runtime pools, test harness) but
	// far below what soaking up the full stream would cost.
	if grew := int64(heapPeak) - int64(base.HeapAlloc); grew > 64<<20 {
		t.Fatalf("heap grew %d MiB under a stalled consumer (budget %d KiB)", grew>>20, budget>>10)
	}
}

// TestOverloadEventStorm floods the governed tree with a long high-rate
// run at the default budget: the storm must complete clean — no overload,
// no gating artifacts in the verdict — while the high-water stats show the
// storm actually moved real bytes.
func TestOverloadEventStorm(t *testing.T) {
	iters := 500
	if testing.Short() {
		iters = 100
	}
	rep := runBounded(t, 32, workload.Stress(iters), must.Options{
		FanIn:     4,
		Timeout:   30 * time.Millisecond,
		MemBudget: must.DefaultMemBudget,
	})
	if rep.Err != nil {
		t.Fatalf("event storm failed: %v", rep.Err)
	}
	if rep.Deadlock || rep.Partial || rep.Overloaded {
		t.Fatalf("storm at default budget degraded: deadlock=%v partial=%v overloaded=%v",
			rep.Deadlock, rep.Partial, rep.Overloaded)
	}
	if rep.MemHighWater <= 0 {
		t.Fatal("storm recorded no memory high water")
	}
	if len(rep.QueueBytesHW) == 0 {
		t.Fatal("storm recorded no per-class byte high waters")
	}
}

// TestOverloadAbortChurnLeaksNothing drives repeated overload-abort cycles
// — tiny-budget deadlock runs that end in app abort with the gate flapping
// — and checks the process returns to its goroutine baseline: governance
// must not strand gate waiters or pump goroutines across runs.
func TestOverloadAbortChurnLeaksNothing(t *testing.T) {
	opts := must.Options{
		FanIn:     2,
		Timeout:   20 * time.Millisecond,
		MemBudget: 2 << 10,
	}
	must.Run(8, workload.RecvRecvDeadlock(), opts) // warm-up: runtime pools grow once
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		rep := runBounded(t, 8, workload.RecvRecvDeadlock(), opts)
		if rep.Err != nil {
			t.Fatalf("churn run %d failed: %v", i, rep.Err)
		}
		if !rep.Deadlock {
			t.Fatalf("churn run %d lost the deadlock", i)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > baseline+2 {
		t.Fatalf("goroutines grew %d -> %d across overload-abort cycles", baseline, n)
	}
}

// TestWireTCPBackpressureDoesNotBreakDetection is the TCP port of the
// channel-transport backpressure test (must/agreement_test.go): tiny
// rank-event buffers plus the governed per-leaf wire window must throttle,
// not corrupt — a ring that churns then deadlocks is still fully detected,
// and the worker finals carry the governance accounting home.
func TestWireTCPBackpressureDoesNotBreakDetection(t *testing.T) {
	h := &tcpHarness{haltWorker: -1}
	rep := h.run(t, 8, func(p *mpi.Proc) {
		n := p.Size()
		right := (p.Rank() + 1) % n
		left := (p.Rank() + n - 1) % n
		for i := 0; i < 30; i++ {
			p.Sendrecv(mpi.Int64(int64(i)), right, 0, left, 0, mpi.CommWorld)
		}
		p.Recv(right, 99, mpi.CommWorld)
		p.Finalize()
	}, must.Options{
		FanIn:     2,
		Timeout:   30 * time.Millisecond,
		EventBuf:  2,
		MemBudget: must.DefaultMemBudget,
	})
	if !rep.Deadlock || len(rep.Deadlocked) != 8 {
		t.Fatalf("deadlock=%v deadlocked=%v", rep.Deadlock, rep.Deadlocked)
	}
	if rep.Partial || rep.Overloaded {
		t.Fatalf("TCP backpressure degraded the run: partial=%v overloaded=%v", rep.Partial, rep.Overloaded)
	}
	if rep.MemHighWater <= 0 {
		t.Fatal("worker governance stats were not folded into the report")
	}
	for w, err := range h.workerErrs {
		if err != nil {
			t.Fatalf("worker %d exited with error: %v", w, err)
		}
	}
}
