// Package fault is the tool's fault-injection plane: a deterministic,
// seeded description of infrastructure misbehaviour — message drop,
// duplication, reordering, delay jitter, link stalls, and tool-node
// crashes — that the TBON applies to its internal links and nodes.
//
// The paper's protocols (Figures 6–8) assume lossless, non-overtaking
// links and immortal tool nodes. A production tool cannot: this package
// provides the adversary, and the TBON's reliable link layer
// (sequence numbers, acknowledgements, retransmission, resequencing)
// plus its heartbeat supervision provide the defense. Chaos tests pair
// the two and assert the reported deadlock sets stay exact, or are
// explicitly flagged partial.
//
// All randomness is derived from Plan.Seed with a per-link splitmix64
// stream, so a failing chaos run is reproducible from its seed alone.
package fault

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// Class names the kind of tool-internal link a rule applies to.
type Class int

const (
	// AnyLink matches every tool-internal link.
	AnyLink Class = iota
	// UpLink matches child → parent links (and the root's self-loop).
	UpLink
	// DownLink matches parent → child broadcast links.
	DownLink
	// PeerLink matches first-layer intralayer links.
	PeerLink
	// RankLink is the rank → first-layer event link when it crosses a
	// process boundary (TCP transport): the coordinator sequences injected
	// rank events on it so the reliable layer can heal wire-level loss.
	// In-process fault rules never target it — it exists only where the
	// wire-level fault proxy, not the link pumps, is the adversary.
	RankLink
)

func (c Class) String() string {
	switch c {
	case UpLink:
		return "up"
	case DownLink:
		return "down"
	case PeerLink:
		return "peer"
	case RankLink:
		return "rank"
	default:
		return "any"
	}
}

// Rule is one fault policy. Probabilities are per message in [0, 1];
// zero-valued fields inject nothing.
type Rule struct {
	// Link restricts the rule to one link class (AnyLink = all).
	Link Class
	// Drop is the probability of losing a message.
	Drop float64
	// Dup is the probability of delivering a message twice.
	Dup float64
	// Reorder is the probability of a message overtaking its predecessor
	// on the link (a per-link FIFO violation).
	Reorder float64
	// JitterMax adds a uniform random delay in [0, JitterMax] to the
	// message's delivery time.
	JitterMax time.Duration
	// StallEvery/StallFor stall the whole link for StallFor once every
	// StallEvery messages (0 = never).
	StallEvery int
	StallFor   time.Duration
	// MaxDrops caps the number of messages this rule may drop across all
	// links (0 = unlimited). Used by tests that lose exactly one message.
	MaxDrops int
	// Match restricts the rule to messages it returns true for (nil =
	// all messages). The argument is the tool-level message, not the
	// transport frame.
	Match func(msg any) bool
}

// Crash schedules the death of one tool node: After the given duration
// from tree start, node (Layer, Index) stops processing messages.
type Crash struct {
	Layer, Index int
	After        time.Duration
}

// RankCrash schedules the death of one *application* rank: immediately
// before issuing its AtCall-th MPI call (1-based), the rank's goroutine
// emits a RankDown event and exits. Its posted receives are tombstoned
// (the dead rank consumes nothing further), while messages it already
// sent stay matchable — mirroring an MPI process that was killed between
// two calls. Executed by mpisim, not by the link Injector.
type RankCrash struct {
	Rank int
	// AtCall is the 1-based index of the MPI call the crash preempts
	// (1 = the rank dies before its first call).
	AtCall int
}

// RankStall schedules a progress fault on one application rank:
// immediately before issuing its AtCall-th MPI call (1-based), the rank
// stops making MPI calls For the given duration — sleeping when Busy is
// false, livelocked in a compute spin when Busy is true. For == 0 means
// stall forever (the rank never issues another call and never exits).
// The rank is alive the whole time; only the progress watchdog can see
// this fault. Executed by mpisim, not by the link Injector.
type RankStall struct {
	Rank   int
	AtCall int
	For    time.Duration
	Busy   bool
}

// Plan is a complete, seeded fault scenario plus the knobs of the
// self-healing machinery that defends against it.
type Plan struct {
	// Seed derives every per-link random stream.
	Seed int64
	// Rules are the link-fault policies (all matching rules apply).
	Rules []Rule
	// Crashes are the scheduled tool-node deaths.
	Crashes []Crash

	// RankCrashes and RankStalls are the application-plane faults:
	// scheduled deaths and progress stalls of MPI ranks. They are
	// executed by the MPI simulator, not the link Injector — the tool
	// observes them only through the event stream (RankDown, missing
	// heartbeat progress), exactly as a real tool would.
	RankCrashes []RankCrash
	RankStalls  []RankStall

	// DisableRetransmit turns the reliable link layer off, so injected
	// link faults become permanent. Used by tests that exercise the
	// higher-level defenses (snapshot epoch retry) in isolation.
	DisableRetransmit bool

	// Recover enables exact recovery of crashed first-layer tool nodes:
	// instead of degrading the report (Unknown ranks), the supervisor
	// respawns a replacement and the tool rebuilds its state by journal
	// replay. Requires the reliable link layer (ignored when
	// DisableRetransmit is set). Off by default so existing degradation
	// behaviour — and the tests asserting it — are unchanged; the mustrun
	// CLI turns it on whenever a fault plan is configured.
	Recover bool

	// JournalCap bounds the per-node journal suffix: when the live suffix
	// exceeds the cap, the owner takes a checkpoint regardless of the
	// retirement policy (0 = default, see internal/core).
	JournalCap int

	// Heartbeat is the node liveness beacon interval (default 5ms);
	// DeadAfter is the silence after which the supervisor declares a
	// node dead (default 10 heartbeats).
	Heartbeat time.Duration
	DeadAfter time.Duration

	// RetryBase is the first retransmission timeout (default 2ms),
	// doubling per attempt up to RetryCap (default 32ms), for at most
	// MaxAttempts retransmissions (default 12) before the frame is
	// abandoned.
	RetryBase   time.Duration
	RetryCap    time.Duration
	MaxAttempts int
}

// HeartbeatInterval returns the effective heartbeat period.
func (p *Plan) HeartbeatInterval() time.Duration {
	if p.Heartbeat > 0 {
		return p.Heartbeat
	}
	return 5 * time.Millisecond
}

// DeadAfterInterval returns the effective death-declaration silence.
func (p *Plan) DeadAfterInterval() time.Duration {
	if p.DeadAfter > 0 {
		return p.DeadAfter
	}
	return 10 * p.HeartbeatInterval()
}

// RetryBaseInterval returns the effective first retransmission timeout.
func (p *Plan) RetryBaseInterval() time.Duration {
	if p.RetryBase > 0 {
		return p.RetryBase
	}
	return 2 * time.Millisecond
}

// RetryCapInterval returns the effective retransmission backoff cap.
func (p *Plan) RetryCapInterval() time.Duration {
	if p.RetryCap > 0 {
		return p.RetryCap
	}
	return 32 * time.Millisecond
}

// RetryAttempts returns the effective retransmission attempt bound.
func (p *Plan) RetryAttempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 12
}

// Supervised reports whether the plan requires heartbeat supervision
// (it schedules crashes or configures an explicit heartbeat).
func (p *Plan) Supervised() bool {
	return len(p.Crashes) > 0 || p.Heartbeat > 0
}

// Decision is the fault outcome for one message on one link.
type Decision struct {
	// Drop loses the message.
	Drop bool
	// Dup delivers the message twice.
	Dup bool
	// Reorder lets the message overtake its predecessor.
	Reorder bool
	// Delay postpones delivery (jitter).
	Delay time.Duration
	// Stall freezes the whole link for this long.
	Stall time.Duration
}

// Injector instantiates a Plan: it hands out deterministic per-link
// deciders and owns the shared drop budgets. Safe for concurrent Link
// calls; each returned Link must be used by a single goroutine.
type Injector struct {
	plan    *Plan
	budgets []atomic.Int64 // remaining MaxDrops per rule (-1 = unlimited)
}

// NewInjector prepares the plan for execution.
func NewInjector(plan *Plan) *Injector {
	in := &Injector{plan: plan, budgets: make([]atomic.Int64, len(plan.Rules))}
	for i, r := range plan.Rules {
		if r.MaxDrops > 0 {
			in.budgets[i].Store(int64(r.MaxDrops))
		} else {
			in.budgets[i].Store(-1)
		}
	}
	return in
}

// Plan returns the underlying plan.
func (in *Injector) Plan() *Plan { return in.plan }

// takeDrop consumes one unit of rule ri's drop budget.
func (in *Injector) takeDrop(ri int) bool {
	b := &in.budgets[ri]
	for {
		cur := b.Load()
		if cur < 0 {
			return true // unlimited
		}
		if cur == 0 {
			return false
		}
		if b.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// Link returns the decider for one link, identified by the receiving
// node's global id and the link class. The random stream is a pure
// function of (Plan.Seed, id, class).
func (in *Injector) Link(id int, class Class) *Link {
	rules := make([]int, 0, len(in.plan.Rules))
	for i, r := range in.plan.Rules {
		if r.Link == AnyLink || r.Link == class {
			rules = append(rules, i)
		}
	}
	seed := splitmix64(uint64(in.plan.Seed) ^ splitmix64(uint64(id)<<8|uint64(class)))
	return &Link{
		inj:   in,
		rules: rules,
		rng:   rand.New(rand.NewSource(int64(seed))),
	}
}

// Link decides the fate of each message on one link. Not safe for
// concurrent use — it belongs to the link's pump goroutine.
type Link struct {
	inj   *Injector
	rules []int
	rng   *rand.Rand
	count int
}

// Decide rolls the link's deterministic dice for one message. The same
// number of random draws is consumed for every message, so decision
// streams do not depend on message contents beyond Match.
func (l *Link) Decide(msg any) Decision {
	var d Decision
	l.count++
	for _, ri := range l.rules {
		r := &l.inj.plan.Rules[ri]
		// Fixed draw count per rule keeps the stream deterministic.
		pd := l.rng.Float64()
		pu := l.rng.Float64()
		po := l.rng.Float64()
		var jitter time.Duration
		if r.JitterMax > 0 {
			jitter = time.Duration(l.rng.Int63n(int64(r.JitterMax) + 1))
		}
		if r.Match != nil && !r.Match(msg) {
			continue
		}
		if !d.Drop && pd < r.Drop && l.inj.takeDrop(ri) {
			d.Drop = true
		}
		if pu < r.Dup {
			d.Dup = true
		}
		if po < r.Reorder {
			d.Reorder = true
		}
		if jitter > d.Delay {
			d.Delay = jitter
		}
		if r.StallEvery > 0 && l.count%r.StallEvery == 0 && r.StallFor > d.Stall {
			d.Stall = r.StallFor
		}
	}
	return d
}

// splitmix64 is the SplitMix64 mixing function — a cheap, high-quality
// way to derive independent streams from one seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
