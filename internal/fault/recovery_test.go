package fault_test

// Recovery suite: the counterpart of the degraded-mode chaos tests. With
// FaultPlan.Recover set, a crashed first-layer tool node is respawned and
// rebuilt exactly — checkpoint restore plus deterministic journal replay,
// with the reliable transport migrating in-flight frames onto the
// replacement's links. The observable contract: the report of a run with
// first-layer crashes is IDENTICAL to the fault-free reference (same
// verdict, same deadlocked set, no Partial flag, zero Unknown ranks),
// instead of the honest degradation tested in chaos_test.go.

import (
	"reflect"
	"testing"
	"time"

	"dwst/internal/testseed"
	"dwst/internal/workload"
	"dwst/must"
)

// recoverPlan is the supervision/recovery configuration shared by the
// suite: the generous death-declaration window mirrors the degraded-mode
// tests (under -race the scheduler can starve healthy nodes).
func recoverPlan(seed int64, node int, after time.Duration) *must.FaultPlan {
	return &must.FaultPlan{
		Seed:      seed,
		Heartbeat: 5 * time.Millisecond,
		DeadAfter: 400 * time.Millisecond,
		Crashes:   []must.Crash{{Layer: 0, Index: node, After: after}},
		Recover:   true,
	}
}

// TestRecoveryFirstLayerCrashExactVerdict is the headline recovery
// property: across workloads, crash targets, and crash times, a run with
// Recover set must produce the exact fault-free verdict — never a partial
// report, never an unknown rank. With MUST_CHAOS_RUNS unset this executes
// 3 workloads x 70 seeds = 210 crash-recovery runs.
func TestRecoveryFirstLayerCrashExactVerdict(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(70)
	if testing.Short() {
		hi = 4
	}
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref := verdictOf(runBounded(t, c.procs, c.prog, must.Options{FanIn: c.fanIn, Timeout: 20 * time.Millisecond}))
			if !ref.Deadlock {
				t.Fatalf("reference run found no deadlock")
			}
			firstLayer := (c.procs + c.fanIn - 1) / c.fanIn
			testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
				t.Parallel()
				// Vary the victim and the crash time per seed; the crash
				// always lands before the first quiescence trigger (20ms),
				// exercising different points of the matching protocol.
				node := int(seed) % firstLayer
				after := time.Duration(5+seed%10) * time.Millisecond
				rep := runBounded(t, c.procs, c.prog, must.Options{
					FanIn:            c.fanIn,
					Timeout:          20 * time.Millisecond,
					SnapshotDeadline: 500 * time.Millisecond,
					Fault:            recoverPlan(seed, node, after),
				})
				if rep.Partial {
					t.Fatalf("recovered crash must not degrade the report (unknown ranks %v)", rep.UnknownRanks)
				}
				if len(rep.UnknownRanks) != 0 {
					t.Fatalf("unknown ranks %v after recovery", rep.UnknownRanks)
				}
				// A potential-only workload (fig2b under buffered sends)
				// completes on its own; if the app outran the crash timer
				// there is nothing to recover and the run is simply
				// fault-free. Recovery is mandatory only when the crash
				// landed inside the app's lifetime.
				if rep.Recoveries < 1 && rep.Elapsed >= after {
					t.Fatalf("crash of node %d at %v was never recovered (recoveries=0, app ran %v)",
						node, after, rep.Elapsed)
				}
				if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
					t.Fatalf("verdict diverged after recovery (node %d, after %v):\n got %+v\nwant %+v", node, after, got, ref)
				}
			})
		})
	}
}

// TestRecoveryWithLinkFaults layers recovery on top of the headline chaos
// property: drop+dup+reorder on every link AND a first-layer crash, still
// the exact fault-free verdict.
func TestRecoveryWithLinkFaults(t *testing.T) {
	hi := testseed.ChaosRuns(20)
	if testing.Short() {
		hi = 2
	}
	prog := workload.RecvRecvDeadlock()
	ref := verdictOf(runBounded(t, 8, prog, must.Options{FanIn: 2, Timeout: 20 * time.Millisecond}))
	testseed.Run(t, 0, hi, func(t *testing.T, seed int64) {
		t.Parallel()
		plan := recoverPlan(seed, int(seed)%4, time.Duration(5+seed%10)*time.Millisecond)
		plan.Rules = []must.FaultRule{{
			Drop:      0.01,
			Dup:       0.01,
			Reorder:   0.01,
			JitterMax: 100 * time.Microsecond,
		}}
		rep := runBounded(t, 8, prog, must.Options{
			FanIn:            2,
			Timeout:          20 * time.Millisecond,
			SnapshotDeadline: 500 * time.Millisecond,
			Fault:            plan,
		})
		if rep.Partial || len(rep.UnknownRanks) != 0 {
			t.Fatalf("recovered crash under link faults degraded the report (unknown %v)", rep.UnknownRanks)
		}
		if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
			t.Fatalf("verdict diverged:\n got %+v\nwant %+v", got, ref)
		}
	})
}

// TestRecoveryRepeatedCrashes kills the same first-layer slot twice: the
// second incarnation's replacement replays the journal the first two
// incarnations wrote (the post-recovery checkpoint keeps the second replay
// short). The verdict must still be exact.
func TestRecoveryRepeatedCrashes(t *testing.T) {
	prog := workload.RecvRecvDeadlock()
	ref := verdictOf(runBounded(t, 8, prog, must.Options{FanIn: 2, Timeout: 20 * time.Millisecond}))
	plan := recoverPlan(1, 0, 10*time.Millisecond)
	plan.Crashes = append(plan.Crashes, must.Crash{Layer: 0, Index: 0, After: 500 * time.Millisecond})
	rep := runBounded(t, 8, prog, must.Options{
		FanIn:            2,
		Timeout:          20 * time.Millisecond,
		SnapshotDeadline: 500 * time.Millisecond,
		Fault:            plan,
	})
	if rep.Partial || len(rep.UnknownRanks) != 0 {
		t.Fatalf("repeated crashes degraded the report (unknown %v)", rep.UnknownRanks)
	}
	if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
		t.Fatalf("verdict diverged after repeated crashes:\n got %+v\nwant %+v", got, ref)
	}
}

// TestRecoveryRequiresTransport: Recover is gated on the reliable link
// layer — with retransmission disabled the journal cannot guarantee
// exactly-once input capture, so the tool must fall back to honest
// degradation rather than pretend to recover.
func TestRecoveryRequiresTransport(t *testing.T) {
	rep := runBounded(t, 8, workload.RecvRecvDeadlock(), must.Options{
		FanIn:   2,
		Timeout: 20 * time.Millisecond,
		Fault: &must.FaultPlan{
			Seed:              1,
			Heartbeat:         5 * time.Millisecond,
			DeadAfter:         400 * time.Millisecond,
			Crashes:           []must.Crash{{Layer: 0, Index: 1, After: 15 * time.Millisecond}},
			Recover:           true,
			DisableRetransmit: true,
		},
	})
	if rep.Recoveries != 0 {
		t.Fatalf("recovery must be disabled without the reliable transport (got %d recoveries)", rep.Recoveries)
	}
	if !rep.Partial {
		t.Fatal("without recovery a first-layer crash must degrade the report")
	}
	want := []int{2, 3}
	if !reflect.DeepEqual(rep.UnknownRanks, want) {
		t.Fatalf("unknown ranks %v, want %v", rep.UnknownRanks, want)
	}
}

// TestRecoveryJournalBounded is the memory-bound witness: a long
// deadlock-free run (>= 10k events per rank) with journaling active must
// keep the live journal suffix near the checkpoint cap — proportional to
// outstanding work, not to run length.
func TestRecoveryJournalBounded(t *testing.T) {
	iters := 3000 // ~4 events per Sendrecv + barriers: >= 10k events/rank
	if testing.Short() {
		iters = 300
	}
	rep := runBounded(t, 8, workload.Stress(iters), must.Options{
		FanIn:   4,
		Timeout: 20 * time.Millisecond,
		Fault: &must.FaultPlan{
			Seed:    1,
			Rules:   []must.FaultRule{{JitterMax: 10 * time.Microsecond}},
			Recover: true,
		},
	})
	if rep.Deadlock || rep.Partial {
		t.Fatalf("clean stress run misreported: deadlock=%v partial=%v", rep.Deadlock, rep.Partial)
	}
	if rep.JournalHighWater == 0 {
		t.Fatal("journaling was not active (high water 0)")
	}
	// Default cap 512 plus slack for inputs accepted while a checkpoint is
	// refused (frozen during a snapshot epoch). The race scheduler keeps
	// leaves frozen far longer, so the freeze-slack term grows with it;
	// either bound is still a tiny fraction of the ~50k inputs journaled.
	bound := 2048
	if raceDetector {
		bound = 12288
	}
	if rep.JournalHighWater > bound {
		t.Fatalf("journal high water %d not bounded by the checkpoint policy", rep.JournalHighWater)
	}
	t.Logf("journal high water %d after %d iters/rank", rep.JournalHighWater, iters)
}

// TestRecoveryJournalCapOption: an explicit JournalCap tightens the bound.
func TestRecoveryJournalCapOption(t *testing.T) {
	rep := runBounded(t, 8, workload.Stress(500), must.Options{
		FanIn:   4,
		Timeout: 20 * time.Millisecond,
		Fault: &must.FaultPlan{
			Seed:       1,
			Recover:    true,
			JournalCap: 64,
		},
	})
	if rep.Deadlock || rep.Partial {
		t.Fatalf("clean stress run misreported: deadlock=%v partial=%v", rep.Deadlock, rep.Partial)
	}
	if rep.JournalHighWater == 0 || rep.JournalHighWater > 512 {
		t.Fatalf("journal high water %d ignores JournalCap=64", rep.JournalHighWater)
	}
}

// TestRecoveryDegradedDefaultUnchanged pins the opt-in: a plan that merely
// schedules crashes (no Recover) must keep the pre-recovery degradation
// semantics byte for byte — the library default is unchanged.
func TestRecoveryDegradedDefaultUnchanged(t *testing.T) {
	rep := runBounded(t, 8, workload.RecvRecvDeadlock(), must.Options{
		FanIn:   2,
		Timeout: 20 * time.Millisecond,
		Fault: &must.FaultPlan{
			Seed:      1,
			Heartbeat: 5 * time.Millisecond,
			DeadAfter: 400 * time.Millisecond,
			Crashes:   []must.Crash{{Layer: 0, Index: 2, After: 15 * time.Millisecond}},
		},
	})
	if rep.Recoveries != 0 {
		t.Fatalf("recovery ran without opt-in (%d recoveries)", rep.Recoveries)
	}
	if !rep.Partial || !reflect.DeepEqual(rep.UnknownRanks, []int{4, 5}) {
		t.Fatalf("degradation default changed: partial=%v unknown=%v", rep.Partial, rep.UnknownRanks)
	}
}

// TestRecoveryStatsPopulated sanity-checks the new counters end to end on
// one recovered run (the values feed mustrun's -stats-json).
func TestRecoveryStatsPopulated(t *testing.T) {
	rep := runBounded(t, 8, workload.RecvRecvDeadlock(), must.Options{
		FanIn:            2,
		Timeout:          20 * time.Millisecond,
		SnapshotDeadline: 500 * time.Millisecond,
		Fault:            recoverPlan(1, 0, 10*time.Millisecond),
	})
	if rep.Recoveries < 1 {
		t.Fatalf("expected at least one recovery, got %d", rep.Recoveries)
	}
	if rep.ReplayedMsgs == 0 {
		t.Error("recovery replayed no journal entries — replay path not exercised")
	}
	if rep.ReplayTime <= 0 {
		t.Error("replay time not measured")
	}
	if rep.JournalHighWater == 0 {
		t.Error("journal high water not collected")
	}
	if rep.Partial {
		t.Errorf("recovered run flagged partial (unknown %v)", rep.UnknownRanks)
	}
	t.Logf("recoveries=%d replayed=%d replay=%v journal-hw=%d",
		rep.Recoveries, rep.ReplayedMsgs, rep.ReplayTime, rep.JournalHighWater)
}
