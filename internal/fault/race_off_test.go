//go:build !race

package fault_test

const raceDetector = false
