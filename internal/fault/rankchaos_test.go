package fault_test

// Application-plane chaos: crash and stall MPI ranks (optionally while the
// link-fault plane is also active) and check the tool classifies the
// outcome correctly — DeadlockByFailure naming the dead rank and the ranks
// transitively blocked on it, Stalled for a watchdog fire, and a clean
// verdict when a transient stall resolves on its own.

import (
	"strings"
	"testing"
	"time"

	"dwst/internal/testseed"
	"dwst/internal/workload"
	"dwst/must"
)

// TestChaosRankCrashYieldsDeadlockByFailure crashes one rank (chosen by
// the seed) early in a deadlock-free workload. The verdict must be
// deadlock-by-failure, name exactly the crashed rank, and report a
// non-empty transitively-blocked set that is part of the deadlocked set.
func TestChaosRankCrashYieldsDeadlockByFailure(t *testing.T) {
	const procs = 8
	lo, hi := int64(0), testseed.ChaosRuns(24)
	if testing.Short() {
		hi = 4
	}
	testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
		t.Parallel()
		rank := int(seed) % procs
		atCall := 1 + int(seed/int64(procs))%3
		rep := runBounded(t, procs, workload.Stress(5), must.Options{
			FanIn:   2,
			Timeout: 20 * time.Millisecond,
			Fault: &must.FaultPlan{
				Seed:        seed,
				RankCrashes: []must.RankCrash{{Rank: rank, AtCall: atCall}},
			},
		})
		if rep.Verdict != must.VerdictDeadlockByFailure {
			t.Fatalf("verdict = %v, want deadlock-by-failure (dead %v)", rep.Verdict, rep.DeadRanks)
		}
		if len(rep.DeadRanks) != 1 || rep.DeadRanks[0] != rank {
			t.Fatalf("dead ranks = %v, want [%d]", rep.DeadRanks, rank)
		}
		if lc := rep.DeadLastCalls[rank]; lc != atCall-1 {
			t.Fatalf("rank %d last call = %d, want %d (crash-at-call %d)", rank, lc, atCall-1, atCall)
		}
		if len(rep.FailureBlocked) == 0 {
			t.Fatalf("no ranks reported transitively blocked on the failure")
		}
		dead := map[int]bool{}
		for _, d := range rep.Deadlocked {
			dead[d] = true
		}
		for _, b := range rep.FailureBlocked {
			if b == rank {
				t.Fatalf("crashed rank %d listed in its own transitively-blocked set %v", rank, rep.FailureBlocked)
			}
			if !dead[b] {
				t.Fatalf("failure-blocked rank %d not in deadlocked set %v", b, rep.Deadlocked)
			}
		}
		if !dead[rank] {
			t.Fatalf("crashed rank %d missing from deadlocked set %v", rank, rep.Deadlocked)
		}
		if !strings.Contains(rep.HTML, "DEADLOCK BY FAILURE") {
			t.Fatal("HTML report lacks the deadlock-by-failure section")
		}
		if rep.Partial {
			t.Fatalf("an application crash is not tool degradation (unknown %v)", rep.UnknownRanks)
		}
	})
}

// TestChaosRankStallWatchdog stalls one rank forever. With the watchdog
// enabled the run must end with a Stalled verdict naming the rank, and no
// deadlock (the stalled rank is alive, not blocked in MPI).
func TestChaosRankStallWatchdog(t *testing.T) {
	for _, rank := range []int{0, 3} {
		rank := rank
		t.Run(map[int]string{0: "rank0", 3: "rank3"}[rank], func(t *testing.T) {
			t.Parallel()
			rep := runBounded(t, 4, workload.Stress(5), must.Options{
				FanIn:         2,
				Timeout:       20 * time.Millisecond,
				WatchdogQuiet: 100 * time.Millisecond,
				Fault: &must.FaultPlan{
					Seed:       1,
					RankStalls: []must.RankStall{{Rank: rank, AtCall: 3}},
				},
			})
			if rep.Verdict != must.VerdictStalled {
				t.Fatalf("verdict = %v, want stalled", rep.Verdict)
			}
			found := false
			for _, r := range rep.StalledRanks {
				if r == rank {
					found = true
				}
			}
			if !found {
				t.Fatalf("stalled ranks = %v, want to include %d", rep.StalledRanks, rank)
			}
			if rep.Deadlock {
				t.Fatalf("stall misclassified as deadlock (ranks %v)", rep.Deadlocked)
			}
			if rep.WatchdogFires < 1 {
				t.Fatalf("watchdog fires = %d, want >= 1", rep.WatchdogFires)
			}
		})
	}
}

// TestChaosBusyStallWatchdog is the livelock variant: the rank spins on
// CPU instead of sleeping. The watchdog must classify it identically.
func TestChaosBusyStallWatchdog(t *testing.T) {
	rep := runBounded(t, 4, workload.Stress(5), must.Options{
		FanIn:         2,
		Timeout:       20 * time.Millisecond,
		WatchdogQuiet: 100 * time.Millisecond,
		Fault: &must.FaultPlan{
			Seed:       1,
			RankStalls: []must.RankStall{{Rank: 1, AtCall: 2, Busy: true}},
		},
	})
	if rep.Verdict != must.VerdictStalled {
		t.Fatalf("verdict = %v, want stalled", rep.Verdict)
	}
	if rep.Deadlock {
		t.Fatalf("livelock misclassified as deadlock (ranks %v)", rep.Deadlocked)
	}
}

// TestChaosTransientStallIsInvisible stalls a rank briefly with the
// watchdog disabled: the rank resumes and the run must be completely
// clean — no deadlock, no stall verdict, no degraded report.
func TestChaosTransientStallIsInvisible(t *testing.T) {
	rep := runBounded(t, 4, workload.Stress(5), must.Options{
		FanIn:   2,
		Timeout: 20 * time.Millisecond,
		Fault: &must.FaultPlan{
			Seed:       1,
			RankStalls: []must.RankStall{{Rank: 2, AtCall: 3, For: 60 * time.Millisecond}},
		},
	})
	if rep.Deadlock {
		t.Fatalf("transient stall misreported as deadlock (ranks %v)", rep.Deadlocked)
	}
	if rep.Verdict != must.VerdictNone {
		t.Fatalf("verdict = %v, want none", rep.Verdict)
	}
	if len(rep.StalledRanks) != 0 || rep.WatchdogFires != 0 {
		t.Fatalf("disabled watchdog still fired: stalled %v fires %d", rep.StalledRanks, rep.WatchdogFires)
	}
	if rep.Partial || rep.AppAborted {
		t.Fatalf("transient stall degraded the run: partial=%v aborted=%v", rep.Partial, rep.AppAborted)
	}
}

// TestChaosMixedRankAndLinkFaults is the combined plane: a rank crash
// while every tool link drops, duplicates and reorders messages. The
// retransmitting transport must still deliver the exact failure verdict —
// same dead rank, a consistent blocked set, never a partial report.
func TestChaosMixedRankAndLinkFaults(t *testing.T) {
	const procs = 8
	lo, hi := int64(0), testseed.ChaosRuns(24)
	if testing.Short() {
		hi = 4
	}
	testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
		t.Parallel()
		rank := int(seed) % procs
		rep := runBounded(t, procs, workload.Stress(5), must.Options{
			FanIn:   2,
			Timeout: 20 * time.Millisecond,
			Fault: &must.FaultPlan{
				Seed:        seed,
				RankCrashes: []must.RankCrash{{Rank: rank, AtCall: 2}},
				Rules: []must.FaultRule{{
					Drop:      0.01,
					Dup:       0.01,
					Reorder:   0.01,
					JitterMax: 100 * time.Microsecond,
				}},
			},
		})
		if rep.Partial {
			t.Fatalf("link faults must stay invisible under a rank crash (unknown %v)", rep.UnknownRanks)
		}
		if rep.Verdict != must.VerdictDeadlockByFailure {
			t.Fatalf("verdict = %v, want deadlock-by-failure", rep.Verdict)
		}
		if len(rep.DeadRanks) != 1 || rep.DeadRanks[0] != rank {
			t.Fatalf("dead ranks = %v, want [%d]", rep.DeadRanks, rank)
		}
		if len(rep.FailureBlocked) == 0 {
			t.Fatal("no ranks reported transitively blocked on the failure")
		}
	})
}

// TestChaosRankFaultFreeStillClean re-runs a fault-free configuration of
// the same workload under many seeds: with no rank faults scheduled and no
// link rules, the new fault plumbing must leave the verdict untouched.
func TestChaosRankFaultFreeStillClean(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(12)
	if testing.Short() {
		hi = 3
	}
	testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
		t.Parallel()
		rep := runBounded(t, 8, workload.Stress(5), must.Options{
			FanIn:   2,
			Timeout: 20 * time.Millisecond,
			Fault:   &must.FaultPlan{Seed: seed},
		})
		if rep.Deadlock || rep.Verdict != must.VerdictNone {
			t.Fatalf("fault-free run not clean: deadlock=%v verdict=%v", rep.Deadlock, rep.Verdict)
		}
		if len(rep.DeadRanks) != 0 || len(rep.StalledRanks) != 0 {
			t.Fatalf("phantom faults reported: dead %v stalled %v", rep.DeadRanks, rep.StalledRanks)
		}
	})
}
