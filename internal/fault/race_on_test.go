//go:build race

package fault_test

// raceDetector reports whether the suite runs under -race, whose scheduler
// stretches snapshot freezes (journal checkpoints are refused while a leaf
// is frozen) and so inflates timing-dependent bounds.
const raceDetector = true
