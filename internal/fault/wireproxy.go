package fault

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dwst/internal/wire"
)

// WireProxy is the TCP-transport counterpart of the link Injector: a
// frame-parsing man-in-the-middle between worker processes and the
// coordinator. Workers dial the proxy instead of the coordinator; the proxy
// decodes real wire frames and applies the plan's Rules per direction —
// dropping, duplicating, delaying or stalling actual bytes on actual
// sockets. Partition severs every live connection and refuses new ones for
// a while, exercising the fabric's reconnect-with-fencing path end to end.
//
// Scope deliberately matches what TCP can violate: frames are dropped,
// duplicated and delayed, but never reordered within a connection (the
// stream is FIFO; Rule.Reorder is ignored). Handshake and shutdown frames
// (hello, welcome, shutdown, final) pass through unharmed — the adversary
// owns the data plane, not the session protocol; losing those is what
// Partition is for.
type WireProxy struct {
	ln      net.Listener
	backend string
	inj     *Injector

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	healUntil time.Time
	nextLink  int
	closed    bool

	wg      sync.WaitGroup
	dropped atomic.Uint64
	dupped  atomic.Uint64
}

// NewWireProxy starts a proxy on an ephemeral loopback port, forwarding to
// the coordinator at backend. Rules with Link == RankLink or AnyLink apply
// to worker→coordinator frames; coordinator→worker frames see the same
// rule set (per-direction deterministic streams derived from plan.Seed).
func NewWireProxy(backend string, plan *Plan) (*WireProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &WireProxy{
		ln:      ln,
		backend: backend,
		inj:     NewInjector(plan),
		conns:   make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address — what workers should dial.
func (p *WireProxy) Addr() string { return p.ln.Addr().String() }

// Dropped reports how many frames the proxy dropped.
func (p *WireProxy) Dropped() uint64 { return p.dropped.Load() }

// Dupped reports how many frames the proxy delivered twice.
func (p *WireProxy) Dupped() uint64 { return p.dupped.Load() }

// Partition severs every live connection and refuses new ones for d: a
// full network partition between the workers and the coordinator. The
// fabric's reconnect machinery heals it once d elapses (if the
// degradation budget has not run out first).
func (p *WireProxy) Partition(d time.Duration) {
	p.mu.Lock()
	p.healUntil = time.Now().Add(d)
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close shuts the proxy down and waits for its goroutines.
func (p *WireProxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *WireProxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		partitioned := time.Now().Before(p.healUntil)
		closed := p.closed
		p.mu.Unlock()
		if closed || partitioned {
			client.Close()
			continue
		}
		server, err := net.DialTimeout("tcp", p.backend, 2*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			server.Close()
			continue
		}
		p.conns[client] = struct{}{}
		p.conns[server] = struct{}{}
		// One deterministic fault stream per direction, derived from the
		// plan seed and the connection's accept order.
		up := p.inj.Link(p.nextLink, RankLink)
		down := p.inj.Link(p.nextLink+1, RankLink)
		p.nextLink += 2
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(client, server, up)
		go p.pipe(server, client, down)
	}
}

// controlKind reports frames the adversary must not touch: losing a
// handshake or final report is a session failure, not a network fault.
func controlKind(k wire.Kind) bool {
	switch k {
	case wire.KindHello, wire.KindWelcome, wire.KindShutdown, wire.KindFinal:
		return true
	}
	return false
}

// pipe forwards frames from src to dst, rolling lk's dice on each
// data-plane frame. Any read or write error tears down both directions
// (closing src unblocks the sibling pipe's read).
func (p *WireProxy) pipe(src, dst net.Conn, lk *Link) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.mu.Lock()
		delete(p.conns, src)
		delete(p.conns, dst)
		p.mu.Unlock()
	}()
	br := bufio.NewReaderSize(src, 64<<10)
	buf := make([]byte, 0, 4096)
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		buf = buf[:0]
		buf, err = wire.Append(buf, f)
		if err != nil {
			return
		}
		if !controlKind(f.Kind) {
			d := lk.Decide(f.Kind)
			if d.Stall > 0 {
				time.Sleep(d.Stall)
			}
			if d.Drop {
				p.dropped.Add(1)
				continue
			}
			if d.Delay > 0 {
				// In-stream delay: preserves FIFO (this is a byte stream),
				// holds back everything behind it — a congested-path model.
				time.Sleep(d.Delay)
			}
			if d.Dup {
				p.dupped.Add(1)
				buf, err = wire.Append(buf, f)
				if err != nil {
					return
				}
			}
		}
		if _, err := dst.Write(buf); err != nil {
			return
		}
	}
}
