package fault_test

// Chaos over TCP with supervised respawn: kill worker processes mid-run
// and re-admit them through the recovery-token handshake. The journal-
// backed replay must make every kill invisible — verdicts byte-equivalent
// to a fault-free reference, never PARTIAL — while exhausted respawn
// budgets and overflowed journals must fall back to the honest
// degradation path rather than hang or mis-report.

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dwst/internal/fault"
	"dwst/internal/testseed"
	"dwst/internal/workload"
	"dwst/must"
)

// TestWireTCPKillRespawnPreservesVerdict is the headline self-healing
// property: across a seed sweep of kill times, a killed worker is
// respawned, replays the coordinator-shipped journal, and the run
// converges to the exact fault-free verdict with no degradation.
func TestWireTCPKillRespawnPreservesVerdict(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(50)
	if testing.Short() {
		hi = 3
	}
	for _, c := range chaosCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			opts := must.Options{FanIn: c.fanIn, Timeout: 20 * time.Millisecond}
			ref := verdictOf(runBounded(t, c.procs, c.prog, opts))
			if !ref.Deadlock {
				t.Fatal("reference run found no deadlock")
			}
			testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
				t.Parallel()
				h := &tcpHarness{
					haltWorker: 1,
					haltAfter:  time.Duration(2+seed%40) * time.Millisecond,
					respawnMax: 3,
				}
				rep := h.run(t, c.procs, c.prog, opts)
				if rep.Partial {
					t.Fatalf("kill with respawn budget left must not degrade (unknown ranks %v)", rep.UnknownRanks)
				}
				if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
					t.Fatalf("verdict diverged after kill+respawn:\n got %+v\nwant %+v", got, ref)
				}
			})
		})
	}
}

// TestWireTCPKillTwoWorkersRespawn kills two of three workers at different
// times; both are re-admitted and the verdict still matches the reference.
func TestWireTCPKillTwoWorkersRespawn(t *testing.T) {
	opts := must.Options{FanIn: 2, Timeout: 20 * time.Millisecond}
	ref := verdictOf(runBounded(t, 8, workload.RecvRecvDeadlock(), opts))
	h := &tcpHarness{
		workers:     3,
		haltWorker:  -1,
		haltWorkers: map[int]time.Duration{0: 8 * time.Millisecond, 2: 20 * time.Millisecond},
		respawnMax:  3,
	}
	rep := h.run(t, 8, workload.RecvRecvDeadlock(), opts)
	if rep.Partial {
		t.Fatalf("double kill with respawn must not degrade (unknown ranks %v)", rep.UnknownRanks)
	}
	if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
		t.Fatalf("verdict diverged after double kill:\n got %+v\nwant %+v", got, ref)
	}
}

// TestWireTCPWireFaultsPlusKillRespawn combines the wire adversary with a
// worker kill: the proxy drops/duplicates/delays real frames (including
// the recovery shipment itself) while the supervisor re-admits the killed
// worker — possibly over several token attempts. The verdict must still
// match the fault-free reference.
func TestWireTCPWireFaultsPlusKillRespawn(t *testing.T) {
	lo, hi := int64(0), testseed.ChaosRuns(10)
	if testing.Short() {
		hi = 2
	}
	opts := must.Options{FanIn: 2, Timeout: 20 * time.Millisecond}
	ref := verdictOf(runBounded(t, 8, workload.RecvRecvDeadlock(), opts))
	testseed.Run(t, lo, hi, func(t *testing.T, seed int64) {
		t.Parallel()
		h := &tcpHarness{
			haltWorker: 1,
			haltAfter:  time.Duration(5+seed%30) * time.Millisecond,
			respawnMax: 5,
			wirePlan: &fault.Plan{
				Seed: seed,
				Rules: []fault.Rule{{
					Drop:      0.02,
					Dup:       0.02,
					JitterMax: 500 * time.Microsecond,
				}},
			},
		}
		rep := h.run(t, 8, workload.RecvRecvDeadlock(), opts)
		if rep.Partial {
			t.Fatalf("wire faults + kill + respawn degraded the report (unknown ranks %v)", rep.UnknownRanks)
		}
		if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
			t.Fatalf("verdict diverged under wire faults + kill:\n got %+v\nwant %+v", got, ref)
		}
	})
}

// TestWireTCPRespawnBudgetExhaustedDegrades re-kills every respawned
// incarnation until the supervisor's budget runs out: recovery must then
// hand over to the degradation path — an honest PARTIAL report naming the
// dead worker's ranks, never a hang or a silently wrong verdict.
func TestWireTCPRespawnBudgetExhaustedDegrades(t *testing.T) {
	h := &tcpHarness{
		budget:     300 * time.Millisecond,
		haltWorker: 1,
		haltAfter:  10 * time.Millisecond,
		respawnMax: 1,
		killEvery:  10 * time.Millisecond,
	}
	rep := h.run(t, 8, workload.RecvRecvDeadlock(), must.Options{
		FanIn:   4, // width0 = 2: worker 1 owns leaf 1 = ranks [4, 8)
		Timeout: 20 * time.Millisecond,
	})
	if !rep.Partial {
		t.Fatal("exhausted respawn budget must degrade to a partial report")
	}
	if want := []int{4, 5, 6, 7}; !reflect.DeepEqual(rep.UnknownRanks, want) {
		t.Fatalf("unknown ranks %v, want %v", rep.UnknownRanks, want)
	}
	if !rep.Deadlock {
		t.Fatal("the surviving ranks' deadlock must still be reported")
	}
}

// TestWireTCPJournalOverflowDegrades caps the per-leaf journal far below
// the workload's input history: exact recovery is impossible, token
// minting must refuse, and the kill degrades honestly instead of
// re-admitting a worker with incomplete state.
func TestWireTCPJournalOverflowDegrades(t *testing.T) {
	h := &tcpHarness{
		budget:     300 * time.Millisecond,
		haltWorker: 1,
		haltAfter:  20 * time.Millisecond,
		respawnMax: 3,
		journalCap: 2,
	}
	rep := h.run(t, 8, workload.RecvRecvDeadlock(), must.Options{
		FanIn:   4,
		Timeout: 20 * time.Millisecond,
	})
	if !rep.Partial {
		t.Fatal("overflowed journal must force degradation, not inexact recovery")
	}
	if want := []int{4, 5, 6, 7}; !reflect.DeepEqual(rep.UnknownRanks, want) {
		t.Fatalf("unknown ranks %v, want %v", rep.UnknownRanks, want)
	}
	if rep.WorkerRespawns != 0 {
		t.Fatalf("WorkerRespawns = %d with an overflowed journal, want 0", rep.WorkerRespawns)
	}
}

// TestWireTCPRespawnFencesStaleClaimants races three claimants for a dead
// worker's slot — two presenting the same one-shot recovery token and one
// joining through the normal handshake: exactly one token claimant wins;
// the duplicate and the stale joiner are fenced permanently, and the run
// still converges to the exact verdict.
func TestWireTCPRespawnFencesStaleClaimants(t *testing.T) {
	opts := must.Options{FanIn: 2, Timeout: 20 * time.Millisecond}
	ref := verdictOf(runBounded(t, 8, workload.RecvRecvDeadlock(), opts))

	ctl := &must.NetControl{}
	var wg sync.WaitGroup
	errs := make([]error, 4) // worker 0, then worker 1's three claimants
	opts.Net = &must.NetOptions{
		Workers: 2,
		Recover: true,
		Control: ctl,
		OnListen: func(addr string) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[0] = must.RunWorker(addr, 0, must.WorkerOptions{})
			}()
			halt := make(chan struct{})
			time.AfterFunc(20*time.Millisecond, func() { close(halt) })
			wg.Add(1)
			go func() {
				defer wg.Done()
				must.RunWorker(addr, 1, must.WorkerOptions{Halt: halt}) // the victim
				var token string
				var err error
				for i := 0; i < 500; i++ {
					token, err = ctl.RecoveryToken(1)
					if err == nil || !strings.Contains(err.Error(), "still connected") {
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
				if err != nil {
					errs[1] = err
					return
				}
				var race sync.WaitGroup
				for i, wopts := range []must.WorkerOptions{
					{Resume: token}, {Resume: token}, {},
				} {
					i, wopts := i, wopts
					race.Add(1)
					go func() {
						defer race.Done()
						errs[1+i] = must.RunWorker(addr, 1, wopts)
					}()
				}
				race.Wait()
			}()
		},
	}
	done := make(chan *must.Report, 1)
	go func() { done <- must.Run(8, workload.RecvRecvDeadlock(), opts) }()
	var rep *must.Report
	select {
	case rep = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("TCP run hung with racing respawn claimants")
	}
	wg.Wait()
	if rep.Err != nil {
		t.Fatalf("run failed: %v", rep.Err)
	}
	winners := 0
	for _, i := range []int{1, 2} { // the two token claimants
		if errs[i] == nil {
			winners++
		} else if !strings.Contains(errs[i].Error(), "fenced") {
			t.Fatalf("token loser's error %q does not mention fencing", errs[i])
		}
	}
	if winners != 1 {
		t.Fatalf("%d token claimants won the slot, want exactly 1 (errs: %v)", winners, errs)
	}
	if errs[3] == nil || !strings.Contains(errs[3].Error(), "fenced") {
		t.Fatalf("stale normal-handshake claimant not fenced: %v", errs[3])
	}
	if errs[0] != nil {
		t.Fatalf("worker 0 exited with error: %v", errs[0])
	}
	if rep.Partial {
		t.Fatalf("supervised respawn degraded the report (unknown ranks %v)", rep.UnknownRanks)
	}
	if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
		t.Fatalf("verdict diverged with racing claimants:\n got %+v\nwant %+v", got, ref)
	}
	if rep.WorkerRespawns != 1 {
		t.Fatalf("WorkerRespawns = %d, want 1", rep.WorkerRespawns)
	}
}

// TestWireTCPRespawnProgressResetsBudget pins the degradation-budget fix:
// the budget clock restarts on observed recovery progress (token mint,
// shipment, replay) instead of counting from the first disconnect — so a
// respawn whose total wall clock exceeds the budget still wins as long as
// each step lands inside it.
func TestWireTCPRespawnProgressResetsBudget(t *testing.T) {
	const budget = 500 * time.Millisecond
	opts := must.Options{FanIn: 2, Timeout: 20 * time.Millisecond}
	ref := verdictOf(runBounded(t, 8, workload.RecvRecvDeadlock(), opts))

	ctl := &must.NetControl{}
	var wg sync.WaitGroup
	var workerErr error
	opts.Net = &must.NetOptions{
		Workers: 2,
		Budget:  budget,
		Recover: true,
		Control: ctl,
		OnListen: func(addr string) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				must.RunWorker(addr, 0, must.WorkerOptions{})
			}()
			halt := make(chan struct{})
			time.AfterFunc(20*time.Millisecond, func() { close(halt) })
			wg.Add(1)
			go func() {
				defer wg.Done()
				must.RunWorker(addr, 1, must.WorkerOptions{Halt: halt})
				// Slow supervisor: mint at ~70% of the budget (progress —
				// restarts the clock), then respawn another ~70% later. The
				// total outage exceeds the budget; only the progress reset
				// keeps the slot alive.
				time.Sleep(350 * time.Millisecond)
				var token string
				var err error
				for i := 0; i < 50; i++ {
					token, err = ctl.RecoveryToken(1)
					if err == nil || !strings.Contains(err.Error(), "still connected") {
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
				if err != nil {
					workerErr = err
					return
				}
				time.Sleep(350 * time.Millisecond)
				workerErr = must.RunWorker(addr, 1, must.WorkerOptions{Resume: token})
			}()
		},
	}
	done := make(chan *must.Report, 1)
	go func() { done <- must.Run(8, workload.RecvRecvDeadlock(), opts) }()
	var rep *must.Report
	select {
	case rep = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("TCP run hung during slow supervised respawn")
	}
	wg.Wait()
	if rep.Err != nil {
		t.Fatalf("run failed: %v", rep.Err)
	}
	if workerErr != nil {
		t.Fatalf("slow respawn lost to the budget: %v", workerErr)
	}
	if rep.Partial {
		t.Fatalf("budget expired despite observed recovery progress (unknown ranks %v)", rep.UnknownRanks)
	}
	if got := verdictOf(rep); !reflect.DeepEqual(got, ref) {
		t.Fatalf("verdict diverged after slow respawn:\n got %+v\nwant %+v", got, ref)
	}
}

// TestWireTCPRespawnCountersSurface checks the observability satellite end
// to end at the library layer: a healed run reports WorkerRespawns and
// ShippedJournalEntries, and the wire replay time folds into ReplayTime.
func TestWireTCPRespawnCountersSurface(t *testing.T) {
	h := &tcpHarness{
		haltWorker: 1,
		haltAfter:  20 * time.Millisecond,
		respawnMax: 3,
	}
	rep := h.run(t, 8, workload.RecvRecvDeadlock(), must.Options{
		FanIn:   2,
		Timeout: 20 * time.Millisecond,
	})
	if rep.Partial {
		t.Fatalf("respawn degraded the report (unknown ranks %v)", rep.UnknownRanks)
	}
	if rep.WorkerRespawns == 0 {
		t.Fatal("WorkerRespawns = 0 after a kill + supervised respawn")
	}
	if rep.ShippedJournalEntries == 0 {
		t.Fatal("ShippedJournalEntries = 0: the kill landed mid-run, the journal cannot be empty")
	}
	if rep.ReplayedMsgs == 0 {
		t.Fatal("ReplayedMsgs = 0: shipped entries must count as replayed")
	}
}
