// Package dwst is a from-scratch Go reproduction of "Distributed Wait
// State Tracking for Runtime MPI Deadlock Detection" (Hilbrich, Protze,
// de Supinski, Baier, Nagel, Müller — SC '13): the MUST runtime deadlock
// detection pipeline with distributed wait-state tracking on a tree-based
// overlay network, together with every substrate it depends on — an MPI
// runtime simulator, the TBON, distributed point-to-point and collective
// matching, the consistent-state snapshot protocol, and AND⊕OR wait-for
// graph detection.
//
// Public API:
//
//   - dwst/mpi — write MPI-style Go programs against the bundled runtime
//   - dwst/must — run programs under the deadlock-detection tool
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for measured-vs-paper results.
package dwst
